"""Core formal-model layer: I/O automata, executions, exploration.

This subpackage implements the unified model Lynch's survey advocates
(§3.6): input/output automata with composition, fairness (tasks), and the
execution/trace machinery every other subsystem builds on.
"""

from .automaton import (
    Action,
    FunctionAutomaton,
    IOAutomaton,
    Signature,
    State,
    TableAutomaton,
)
from .composition import Composition, compose
from .errors import (
    CertificateError,
    ExecutionError,
    InvariantViolation,
    ModelError,
    ReproError,
    SearchBudgetExceeded,
)
from .execution import Execution, check_execution
from .exploration import (
    ReachabilityResult,
    assert_invariant,
    can_reach_from,
    check_invariant,
    explore,
    find_state,
    reachable_states_satisfying,
)
from .freeze import freeze, frozendict, is_frozen, thaw
from .indistinguishability import (
    IndistinguishabilityChain,
    View,
    ViewExtractor,
    decisions_constant_along_chain,
)
from .scheduler import (
    FixedScheduler,
    GreedyAdversary,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)

__all__ = [
    "Action",
    "State",
    "Signature",
    "IOAutomaton",
    "TableAutomaton",
    "FunctionAutomaton",
    "Composition",
    "compose",
    "Execution",
    "check_execution",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "GreedyAdversary",
    "FixedScheduler",
    "explore",
    "check_invariant",
    "assert_invariant",
    "find_state",
    "reachable_states_satisfying",
    "can_reach_from",
    "ReachabilityResult",
    "freeze",
    "thaw",
    "frozendict",
    "is_frozen",
    "View",
    "ViewExtractor",
    "IndistinguishabilityChain",
    "decisions_constant_along_chain",
    "ReproError",
    "ModelError",
    "ExecutionError",
    "InvariantViolation",
    "SearchBudgetExceeded",
    "CertificateError",
]
