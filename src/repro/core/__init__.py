"""Core formal-model layer: I/O automata, executions, exploration.

This subpackage implements the unified model Lynch's survey advocates
(§3.6): input/output automata with composition, fairness (tasks), and the
execution/trace machinery every other subsystem builds on.
"""

from .automaton import (
    Action,
    FunctionAutomaton,
    IOAutomaton,
    Signature,
    State,
    TableAutomaton,
)
from .composition import Composition, compose
from .errors import (
    CertificateError,
    ExecutionError,
    InvariantViolation,
    ModelError,
    ReproError,
    SearchBudgetExceeded,
)
from .execution import Execution, check_execution
from .exploration import (
    ReachabilityResult,
    assert_invariant,
    can_reach_from,
    check_invariant,
    explore,
    find_state,
    reachable_states_satisfying,
)
from .freeze import (
    clear_intern_table,
    freeze,
    frozendict,
    intern_frozen,
    intern_table_stats,
    is_frozen,
    register_packed_owner,
    thaw,
)
from .packed import (
    IdFlags,
    IdToValue,
    PackedGraph,
    StateInterner,
    ValueTable,
    expand_packed,
)
from .stategraph import (
    StateGraph,
    clear_state_graphs,
    forget_state_graph,
    state_graph,
)
from .indistinguishability import (
    IndistinguishabilityChain,
    View,
    ViewExtractor,
    decisions_constant_along_chain,
)
from .runtime import (
    CRASH,
    DECIDE,
    DECLARE,
    DELIVER,
    DROP,
    DUPLICATE,
    EVENT_KINDS,
    HALT,
    OUTPUT,
    SEND,
    STEP,
    FaultAdversary,
    FingerprintMismatch,
    ReplayError,
    SchedulingAdversary,
    SimulationRuntime,
    Trace,
    TraceEvent,
    derive_seed,
    replay,
    spawn_rng,
)
from .scheduler import (
    FixedScheduler,
    GreedyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    TracedExecution,
)

__all__ = [
    "Action",
    "State",
    "Signature",
    "IOAutomaton",
    "TableAutomaton",
    "FunctionAutomaton",
    "Composition",
    "compose",
    "Execution",
    "check_execution",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "GreedyScheduler",
    "GreedyAdversary",
    "TracedExecution",
    "FaultAdversary",
    "SchedulingAdversary",
    "SimulationRuntime",
    "Trace",
    "TraceEvent",
    "ReplayError",
    "FingerprintMismatch",
    "replay",
    "derive_seed",
    "spawn_rng",
    "SEND",
    "DELIVER",
    "DROP",
    "DUPLICATE",
    "CRASH",
    "STEP",
    "DECIDE",
    "DECLARE",
    "OUTPUT",
    "HALT",
    "EVENT_KINDS",
    "FixedScheduler",
    "explore",
    "check_invariant",
    "assert_invariant",
    "find_state",
    "reachable_states_satisfying",
    "can_reach_from",
    "ReachabilityResult",
    "StateGraph",
    "state_graph",
    "forget_state_graph",
    "clear_state_graphs",
    "freeze",
    "thaw",
    "frozendict",
    "intern_frozen",
    "clear_intern_table",
    "intern_table_stats",
    "register_packed_owner",
    "is_frozen",
    "StateInterner",
    "PackedGraph",
    "IdFlags",
    "IdToValue",
    "ValueTable",
    "expand_packed",
    "View",
    "ViewExtractor",
    "IndistinguishabilityChain",
    "decisions_constant_along_chain",
    "ReproError",
    "ModelError",
    "ExecutionError",
    "InvariantViolation",
    "SearchBudgetExceeded",
    "CertificateError",
]


def __getattr__(name: str):
    if name == "GreedyAdversary":
        import warnings

        warnings.warn(
            "repro.core.GreedyAdversary is deprecated; use GreedyScheduler",
            DeprecationWarning,
            stacklevel=2,
        )
        return GreedyScheduler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
