"""The I/O automaton model.

Lynch's survey repeatedly stresses (§3.2, §3.6) that impossibility proofs
need a rigorous formal model that (a) separates problem statements from
implementations, (b) treats *admissibility* (liveness of the environment)
explicitly, and (c) distinguishes who controls each action.  The
input/output automaton model of Lynch and Tuttle [79, 80] is the unified
model the paper advocates, and it is the foundation of this library.

An I/O automaton consists of:

* a **signature** partitioning actions into *input*, *output* and *internal*
  actions; input actions are controlled by the environment, output and
  internal actions (together, the *locally controlled* actions) by the
  automaton itself;
* a set of **start states**;
* a **transition relation**: a set of ``(state, action, state)`` triples,
  with the *input-enabling* requirement that every input action is enabled
  in every state;
* a partition of the locally controlled actions into **tasks** (fairness
  classes): in a fair execution, every task that is enabled infinitely often
  takes infinitely many steps.

States must be hashable (use :mod:`repro.core.freeze`) so that executions,
reachability analysis and valency analysis can put them in sets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
)

from .errors import ModelError

Action = Hashable
State = Hashable


@dataclass(frozen=True)
class Signature:
    """An action signature: disjoint input, output and internal action sets.

    Signatures here are *extensional* (explicit finite sets).  This is what
    exhaustive exploration needs, and every system in the survey we model has
    a finite action alphabet once its parameters (process count, value
    domain, message alphabet) are fixed.
    """

    inputs: FrozenSet[Action] = frozenset()
    outputs: FrozenSet[Action] = frozenset()
    internals: FrozenSet[Action] = frozenset()

    def __post_init__(self):
        inputs = frozenset(self.inputs)
        outputs = frozenset(self.outputs)
        internals = frozenset(self.internals)
        object.__setattr__(self, "inputs", inputs)
        object.__setattr__(self, "outputs", outputs)
        object.__setattr__(self, "internals", internals)
        overlap = (inputs & outputs) | (inputs & internals) | (outputs & internals)
        if overlap:
            raise ModelError(
                f"signature classes must be disjoint; overlapping: {sorted(map(repr, overlap))}"
            )

    @property
    def external(self) -> FrozenSet[Action]:
        """Externally visible actions: inputs and outputs."""
        return self.inputs | self.outputs

    @property
    def locally_controlled(self) -> FrozenSet[Action]:
        """Actions under the automaton's own control: outputs and internals."""
        return self.outputs | self.internals

    @property
    def all_actions(self) -> FrozenSet[Action]:
        return self.inputs | self.outputs | self.internals

    def classify(self, action: Action) -> str:
        """Return 'input', 'output' or 'internal' for ``action``."""
        if action in self.inputs:
            return "input"
        if action in self.outputs:
            return "output"
        if action in self.internals:
            return "internal"
        raise ModelError(f"action {action!r} is not in the signature")

    def hide(self, actions: Iterable[Action]) -> "Signature":
        """Reclassify the given output actions as internal (action hiding)."""
        actions = frozenset(actions)
        stray = actions - self.outputs
        if stray:
            raise ModelError(f"can only hide output actions; not outputs: {sorted(map(repr, stray))}")
        return Signature(
            inputs=self.inputs,
            outputs=self.outputs - actions,
            internals=self.internals | actions,
        )


class IOAutomaton(ABC):
    """Abstract base class for I/O automata.

    Concrete automata implement :meth:`initial_states`,
    :meth:`enabled_actions` (locally controlled actions enabled in a state)
    and :meth:`apply` (the successor states for a state/action pair).

    The transition relation may be nondeterministic: ``apply`` returns an
    iterable of successor states.  Input actions must be enabled in every
    state — ``apply(state, input_action)`` must return at least one
    successor for every reachable ``state``.
    """

    name: str = "automaton"

    @property
    @abstractmethod
    def signature(self) -> Signature:
        """The automaton's action signature."""

    @abstractmethod
    def initial_states(self) -> Iterable[State]:
        """The (nonempty) set of start states."""

    @abstractmethod
    def enabled_actions(self, state: State) -> Iterable[Action]:
        """Locally controlled actions enabled in ``state``."""

    @abstractmethod
    def apply(self, state: State, action: Action) -> Iterable[State]:
        """Successor states reached by performing ``action`` from ``state``.

        Must raise :class:`ModelError` for actions outside the signature and
        return an empty iterable for locally controlled actions that are not
        enabled.
        """

    def tasks(self) -> Sequence[FrozenSet[Action]]:
        """The fairness partition of the locally controlled actions.

        The default is a single task containing every locally controlled
        action, i.e. plain weak fairness for the automaton as a whole.
        """
        return [self.signature.locally_controlled]

    # -- convenience -----------------------------------------------------

    def step(self, state: State, action: Action) -> State:
        """Apply ``action`` expecting exactly one successor; return it."""
        succs = list(self.apply(state, action))
        if len(succs) != 1:
            raise ModelError(
                f"{self.name}: expected deterministic step for {action!r}, got {len(succs)} successors"
            )
        return succs[0]

    def is_enabled(self, state: State, action: Action) -> bool:
        """True if ``action`` (of any class) has a successor from ``state``."""
        kind = self.signature.classify(action)
        if kind == "input":
            return True
        return any(a == action for a in self.enabled_actions(state))

    def is_quiescent(self, state: State) -> bool:
        """True if no locally controlled action is enabled in ``state``."""
        return not any(True for _ in self.enabled_actions(state))

    def rename(self, name: str) -> "IOAutomaton":
        """Set this automaton's display name and return it (fluent)."""
        self.name = name
        return self

    def validate_input_enabling(self, states: Iterable[State]) -> None:
        """Check input enabling over the given states; raise on violation."""
        for state in states:
            for action in self.signature.inputs:
                if not list(self.apply(state, action)):
                    raise ModelError(
                        f"{self.name}: input action {action!r} not enabled in state {state!r}"
                    )


class TableAutomaton(IOAutomaton):
    """An I/O automaton given by explicit tables.

    This is the workhorse for small, hand-authored automata in tests and for
    automata synthesized by exhaustive protocol search: the transition
    relation is a dict mapping ``(state, action)`` to a tuple of successor
    states.
    """

    def __init__(
        self,
        signature: Signature,
        initial: Iterable[State],
        transitions: Dict[Tuple[State, Action], Sequence[State]],
        tasks: Optional[Sequence[Iterable[Action]]] = None,
        name: str = "table-automaton",
    ):
        self._signature = signature
        self._initial = tuple(initial)
        if not self._initial:
            raise ModelError("automaton must have at least one start state")
        self._transitions = {k: tuple(v) for k, v in transitions.items()}
        self._tasks = (
            [frozenset(t) for t in tasks]
            if tasks is not None
            else [signature.locally_controlled]
        )
        self.name = name
        for (_state, action) in self._transitions:
            signature.classify(action)  # raises for unknown actions
        for task in self._tasks:
            stray = task - signature.locally_controlled
            if stray:
                raise ModelError(
                    f"tasks may only contain locally controlled actions; stray: {sorted(map(repr, stray))}"
                )

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_states(self) -> Iterable[State]:
        return self._initial

    def enabled_actions(self, state: State) -> Iterator[Action]:
        for (st, action), succs in self._transitions.items():
            if st == state and succs and action in self._signature.locally_controlled:
                yield action

    def apply(self, state: State, action: Action) -> Sequence[State]:
        kind = self._signature.classify(action)
        succs = self._transitions.get((state, action), ())
        if kind == "input" and not succs:
            # Default input behaviour: ignore (self-loop). This keeps small
            # table automata input-enabled without tabulating every input.
            return (state,)
        return succs

    def tasks(self) -> Sequence[FrozenSet[Action]]:
        return self._tasks


class FunctionAutomaton(IOAutomaton):
    """An I/O automaton given by Python functions.

    Useful for substrates whose state spaces are too large to tabulate:
    the transition relation is computed on demand.
    """

    def __init__(
        self,
        signature: Signature,
        initial: Iterable[State],
        enabled: Callable[[State], Iterable[Action]],
        transition: Callable[[State, Action], Iterable[State]],
        tasks: Optional[Sequence[Iterable[Action]]] = None,
        name: str = "function-automaton",
    ):
        self._signature = signature
        self._initial = tuple(initial)
        if not self._initial:
            raise ModelError("automaton must have at least one start state")
        self._enabled = enabled
        self._transition = transition
        self._tasks = (
            [frozenset(t) for t in tasks]
            if tasks is not None
            else [signature.locally_controlled]
        )
        self.name = name

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_states(self) -> Iterable[State]:
        return self._initial

    def enabled_actions(self, state: State) -> Iterable[Action]:
        return self._enabled(state)

    def apply(self, state: State, action: Action) -> Iterable[State]:
        self._signature.classify(action)
        return self._transition(state, action)

    def tasks(self) -> Sequence[FrozenSet[Action]]:
        return self._tasks
