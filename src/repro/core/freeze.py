"""Helpers for turning mutable state into hashable, immutable values.

State-space exploration (reachability, valency analysis, symmetry checks)
requires automaton states to be hashable so they can live in ``set`` and
``dict``.  Process and system states are most naturally authored as nested
dicts and lists; :func:`freeze` converts such a value into an equivalent
immutable one, and :func:`thaw` converts it back for inspection.

The encoding is canonical: two structurally equal mutable values freeze to
equal hashable values, regardless of dict insertion order.

Because frozen states live in the inner loops of the exploration engine
(every ``succ in reachable`` membership test hashes one), this module also
hash-conses: :class:`frozendict` computes its hash once and caches it, and
:func:`intern_frozen` maintains an intern table mapping each frozen
container to one canonical instance, so structurally equal states share
identity — and dict/set probes short-circuit on ``is`` instead of walking
deep structures.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Mapping, Sequence


class frozendict(Mapping):
    """An immutable, hashable mapping.

    Unlike ``frozenset(d.items())``, a ``frozendict`` still supports item
    lookup, which keeps assertion messages and invariant monitors readable.
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, *args, **kwargs):
        self._data = dict(*args, **kwargs)
        self._hash = None

    @classmethod
    def _from_data(cls, data: dict) -> "frozendict":
        """Wrap ``data`` without copying.  Internal fast path only: the
        caller must hand over ownership (never mutate ``data`` again)."""
        new = cls.__new__(cls)
        new._data = data
        new._hash = None
        return new

    def __getitem__(self, key):
        return self._data[key]

    def __iter__(self):
        return iter(self._data)

    def __len__(self):
        return len(self._data)

    def __hash__(self):
        if self._hash is None:
            # Order-independent combine (equal mappings hash equal no
            # matter the insertion order) without materializing a
            # frozenset of the items.  Collisions fall back to __eq__.
            h = 0x345678
            for item in self._data.items():
                h ^= hash(item)
            self._hash = hash((len(self._data), h))
        return self._hash

    def __eq__(self, other):
        if isinstance(other, frozendict):
            if self is other:
                return True
            # Cached hashes disagree => the mappings cannot be equal.
            if (
                self._hash is not None
                and other._hash is not None
                and self._hash != other._hash
            ):
                return False
            return self._data == other._data
        if isinstance(other, dict):
            return self._data == other
        return NotImplemented

    def __repr__(self):
        items = ", ".join(f"{k!r}: {v!r}" for k, v in sorted(
            self._data.items(), key=lambda kv: repr(kv[0])))
        return "frozendict({" + items + "})"

    def set(self, key, value) -> "frozendict":
        """Return a copy of this mapping with ``key`` bound to ``value``."""
        if key in self._data:
            old = self._data[key]
            if old is value or old == value:
                return self
        new = dict(self._data)
        new[key] = value
        return frozendict._from_data(new)

    def update_with(self, **kwargs) -> "frozendict":
        """Return a copy with the given keyword bindings applied."""
        new = dict(self._data)
        new.update(kwargs)
        return frozendict._from_data(new)


_INTERN: Dict[Any, Any] = {}
_INTERN_HITS = 0
_INTERN_MISSES = 0

# Objects owning per-graph interned state (dense-id tables, packed
# adjacency — see repro.core.packed).  Ids issued by those interners
# reference this process's interning epoch; clear_intern_table() starts a
# new epoch, so every registered owner is asked to drop its packed state
# too.  Weak references: registration must not extend any graph's life.
_PACKED_OWNERS: "weakref.WeakSet" = weakref.WeakSet()


def register_packed_owner(owner: Any) -> None:
    """Register an object exposing ``reset_packed_state()`` for cascade
    clearing by :func:`clear_intern_table` (weakly referenced)."""
    _PACKED_OWNERS.add(owner)


def intern_frozen(value: Any) -> Any:
    """Hash-cons ``value``: return the canonical instance equal to it.

    Only container values (:class:`frozendict`, tuple, frozenset) are
    interned — scalars are returned unchanged.  Unhashable values pass
    through untouched.  The canonical instance is whichever equal value
    was interned first, so states that recur across explorations share
    one object and equality checks inside set/dict probes reduce to
    identity.
    """
    global _INTERN_HITS, _INTERN_MISSES
    if not isinstance(value, (frozendict, tuple, frozenset)):
        return value
    try:
        canonical = _INTERN.get(value)
    except TypeError:
        return value
    if canonical is not None:
        _INTERN_HITS += 1
        return canonical
    _INTERN[value] = value
    _INTERN_MISSES += 1
    return value


def intern_table_stats() -> Dict[str, Any]:
    """Size and hit-rate accounting for the global intern table."""
    probes = _INTERN_HITS + _INTERN_MISSES
    return {
        "size": len(_INTERN),
        "hits": _INTERN_HITS,
        "misses": _INTERN_MISSES,
        "hit_rate": (_INTERN_HITS / probes) if probes else 0.0,
    }


def clear_intern_table() -> None:
    """Empty the intern table (mainly for long-running processes and tests).

    Also resets every registered per-graph interner (state graphs,
    transition caches): their dense ids index tables built from this
    process's interning epoch, so the global clear cascades — otherwise a
    long-lived graph would both leak the old canonical instances and keep
    serving ids from the dead epoch.
    """
    global _INTERN_HITS, _INTERN_MISSES
    _INTERN.clear()
    _INTERN_HITS = 0
    _INTERN_MISSES = 0
    for owner in list(_PACKED_OWNERS):
        reset = getattr(owner, "reset_packed_state", None)
        if reset is not None:
            reset()


def freeze(value: Any, intern: bool = True) -> Any:
    """Recursively convert ``value`` into an equivalent hashable value.

    * dict -> :class:`frozendict` (values frozen recursively)
    * list / tuple -> tuple of frozen elements
    * set / frozenset -> frozenset of frozen elements
    * everything else is returned unchanged (assumed already hashable)

    With ``intern`` (the default), frozen containers are hash-consed
    through :func:`intern_frozen` so equal states share one instance.
    """
    if isinstance(value, frozendict):
        frozen: Any = frozendict(
            {k: freeze(v, intern) for k, v in value.items()}
        )
    elif isinstance(value, Mapping):
        frozen = frozendict({k: freeze(v, intern) for k, v in value.items()})
    elif isinstance(value, (list, tuple)):
        frozen = tuple(freeze(v, intern) for v in value)
    elif isinstance(value, (set, frozenset)):
        frozen = frozenset(freeze(v, intern) for v in value)
    else:
        return value
    return intern_frozen(frozen) if intern else frozen


def thaw(value: Any) -> Any:
    """Inverse of :func:`freeze`: produce plain dicts/lists/sets.

    Tuples become lists, which matches how states are typically authored.
    """
    if isinstance(value, frozendict):
        return {k: thaw(v) for k, v in value.items()}
    if isinstance(value, tuple):
        return [thaw(v) for v in value]
    if isinstance(value, frozenset):
        return {thaw(v) for v in value}
    return value


def is_frozen(value: Any) -> bool:
    """Return True if ``value`` is hashable all the way down."""
    try:
        hash(value)
    except TypeError:
        return False
    if isinstance(value, Mapping):
        return all(is_frozen(v) for v in value.values())
    if isinstance(value, (tuple, frozenset)):
        return all(is_frozen(v) for v in value)
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        return all(is_frozen(v) for v in value)
    return True
