"""Atomic artifact writes: temp file + ``os.replace``.

Campaign counterexamples, benchmark snapshots and golden-trace fixtures
are all *evidence* — files a later process re-reads and re-verifies.  A
worker or campaign killed mid-``write`` must never leave a truncated
file that half-parses: every artifact writer in the repository routes
through these helpers, which stage the full content in a temporary file
in the destination directory and promote it with :func:`os.replace`
(atomic on POSIX and Windows within one filesystem).  Readers therefore
see either the previous complete artifact or the new complete artifact,
never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> str:
    """Write ``text`` to ``path`` atomically; return ``path``.

    The temporary file lives in ``path``'s directory so the final
    ``os.replace`` never crosses a filesystem boundary (cross-device
    renames are not atomic).  On any failure the temporary file is
    removed and the destination is untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, staging = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise
    return path


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Write ``data`` to ``path`` atomically; return ``path``.

    The binary sibling of :func:`atomic_write_text`, used for packed
    state-graph blobs in the certificate store: same staging-file
    protocol, same guarantee that readers see either the previous
    complete blob or the new complete blob, never a prefix.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, staging = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: str, payload, **dump_kwargs) -> str:
    """Serialize ``payload`` and write it atomically; return ``path``.

    Serialization happens *before* any file is touched, so an
    unserializable payload can never clobber an existing artifact.
    """
    text = json.dumps(payload, **dump_kwargs) + "\n"
    return atomic_write_text(path, text)
