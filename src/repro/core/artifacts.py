"""Atomic artifact writes: temp file + ``os.replace``.

Campaign counterexamples, benchmark snapshots and golden-trace fixtures
are all *evidence* — files a later process re-reads and re-verifies.  A
worker or campaign killed mid-``write`` must never leave a truncated
file that half-parses: every artifact writer in the repository routes
through these helpers, which stage the full content in a temporary file
in the destination directory and promote it with :func:`os.replace`
(atomic on POSIX and Windows within one filesystem).  Readers therefore
see either the previous complete artifact or the new complete artifact,
never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> str:
    """Write ``text`` to ``path`` atomically; return ``path``.

    The temporary file lives in ``path``'s directory so the final
    ``os.replace`` never crosses a filesystem boundary (cross-device
    renames are not atomic).  On any failure the temporary file is
    removed and the destination is untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, staging = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise
    return path


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Write ``data`` to ``path`` atomically; return ``path``.

    The binary sibling of :func:`atomic_write_text`, used for packed
    state-graph blobs in the certificate store: same staging-file
    protocol, same guarantee that readers see either the previous
    complete blob or the new complete blob, never a prefix.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, staging = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: str, payload, **dump_kwargs) -> str:
    """Serialize ``payload`` and write it atomically; return ``path``.

    Serialization happens *before* any file is touched, so an
    unserializable payload can never clobber an existing artifact.
    """
    text = json.dumps(payload, **dump_kwargs) + "\n"
    return atomic_write_text(path, text)


class AtomicLineWriter:
    """Incrementally build a text artifact; promote it atomically on commit.

    The streaming sibling of :func:`atomic_write_text` for artifacts too
    large to hold in memory — per-case JSONL logs of million-case chaos
    campaigns, incremental counterexample files.  Lines append to a
    staging file in the destination directory as they are produced (RSS
    stays flat no matter how many lines are written); :meth:`commit`
    fsyncs and promotes with ``os.replace``, :meth:`discard` removes the
    staging file and leaves the destination untouched.  Used as a context
    manager it commits on clean exit and discards when an exception is in
    flight, so readers still only ever see a complete artifact or none.
    """

    def __init__(self, path: str, encoding: str = "utf-8"):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, self._staging = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        self._handle = os.fdopen(fd, "w", encoding=encoding)
        self.lines = 0

    def write(self, text: str) -> None:
        """Append raw text (caller supplies any newlines)."""
        self._handle.write(text)
        self.lines += text.count("\n")

    def write_line(self, text: str) -> None:
        """Append one newline-terminated line."""
        self._handle.write(text + "\n")
        self.lines += 1

    def write_json_line(self, payload) -> None:
        """Append one canonical (sorted-key) JSON line."""
        self.write_line(json.dumps(payload, sort_keys=True))

    def commit(self) -> str:
        """Flush, fsync and atomically promote the staging file."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        os.replace(self._staging, self.path)
        return self.path

    def discard(self) -> None:
        """Drop the staging file; the destination is untouched."""
        try:
            self._handle.close()
        finally:
            try:
                os.unlink(self._staging)
            except OSError:
                pass

    def __enter__(self) -> "AtomicLineWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.discard()
