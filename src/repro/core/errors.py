"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything coming out of the simulators and checkers with one handler.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """An automaton or system model is ill-formed.

    Raised, for example, when two composed automata share an output action,
    when an input action is not enabled in some state (violating input
    enabling), or when a transition is requested for an action outside the
    automaton's signature.
    """


class ExecutionError(ReproError):
    """An execution or schedule is invalid for the model it runs against."""


class InvariantViolation(ReproError):
    """A safety property was violated during simulation or exploration.

    Carries the offending execution fragment when available so tests and
    examples can print a minimal counterexample.
    """

    def __init__(self, message: str, witness=None):
        super().__init__(message)
        self.witness = witness


class SearchBudgetExceeded(ReproError):
    """An exhaustive search exceeded its configured state/depth budget."""


class CertificateError(ReproError):
    """A machine-checked certificate failed re-validation."""
