"""State-space exploration: reachability, invariant checking, CTL-lite.

The mechanized impossibility checkers reduce the survey's arguments to
finite graph questions over configuration spaces:

* *pigeonhole* arguments become reachability plus counting;
* *bivalence* arguments become valency labelling of the reachable graph;
* exhaustive protocol search enumerates automata and asks reachability
  questions about each.

This module provides the shared graph machinery: breadth-first reachability
with budgets, invariant checking with counterexample extraction, and
detection of reachable states satisfying a predicate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .automaton import Action, IOAutomaton, State
from .errors import InvariantViolation, SearchBudgetExceeded
from .execution import Execution


@dataclass
class ReachabilityResult:
    """Outcome of a breadth-first exploration.

    ``parents`` maps each discovered state to the ``(state, action)`` edge
    it was first discovered through, enabling path reconstruction.
    """

    automaton: IOAutomaton
    reachable: Set[State]
    parents: Dict[State, Optional[Tuple[State, Action]]]
    complete: bool

    def path_to(self, target: State) -> Execution:
        """Reconstruct a shortest execution from a start state to ``target``."""
        states: List[State] = [target]
        actions: List[Action] = []
        cursor = target
        while self.parents[cursor] is not None:
            prev, action = self.parents[cursor]  # type: ignore[misc]
            states.append(prev)
            actions.append(action)
            cursor = prev
        states.reverse()
        actions.reverse()
        return Execution(self.automaton, tuple(states), tuple(actions))


def explore(
    automaton: IOAutomaton,
    max_states: int = 100_000,
    include_inputs: bool = False,
    actions_filter: Optional[Callable[[State, Action], bool]] = None,
    initial_states: Optional[Iterable[State]] = None,
) -> ReachabilityResult:
    """Breadth-first search of the reachable state graph.

    By default only locally controlled actions are explored (closed
    systems); set ``include_inputs`` to also fire every input action in
    every state (open systems under a maximally hostile environment).

    Raises :class:`SearchBudgetExceeded` when more than ``max_states``
    distinct states are discovered.
    """
    starts = list(initial_states if initial_states is not None else automaton.initial_states())
    reachable: Set[State] = set()
    parents: Dict[State, Optional[Tuple[State, Action]]] = {}
    queue: deque = deque()
    for s in starts:
        if s not in reachable:
            reachable.add(s)
            parents[s] = None
            queue.append(s)

    while queue:
        state = queue.popleft()
        candidate_actions = list(automaton.enabled_actions(state))
        if include_inputs:
            candidate_actions.extend(automaton.signature.inputs)
        for action in candidate_actions:
            if actions_filter is not None and not actions_filter(state, action):
                continue
            for succ in automaton.apply(state, action):
                if succ in reachable:
                    continue
                if len(reachable) >= max_states:
                    raise SearchBudgetExceeded(
                        f"exploration of {automaton.name} exceeded {max_states} states"
                    )
                reachable.add(succ)
                parents[succ] = (state, action)
                queue.append(succ)
    return ReachabilityResult(automaton, reachable, parents, complete=True)


def check_invariant(
    automaton: IOAutomaton,
    invariant: Callable[[State], bool],
    max_states: int = 100_000,
    include_inputs: bool = False,
) -> Optional[Execution]:
    """Search for a reachable state violating ``invariant``.

    Returns a shortest counterexample execution, or None when the invariant
    holds over the entire (budget-bounded) reachable space.
    """
    starts = list(automaton.initial_states())
    reachable: Set[State] = set()
    parents: Dict[State, Optional[Tuple[State, Action]]] = {}
    queue: deque = deque()
    result = ReachabilityResult(automaton, reachable, parents, complete=False)
    for s in starts:
        if s in reachable:
            continue
        reachable.add(s)
        parents[s] = None
        if not invariant(s):
            return result.path_to(s)
        queue.append(s)

    while queue:
        state = queue.popleft()
        candidate_actions = list(automaton.enabled_actions(state))
        if include_inputs:
            candidate_actions.extend(automaton.signature.inputs)
        for action in candidate_actions:
            for succ in automaton.apply(state, action):
                if succ in reachable:
                    continue
                if len(reachable) >= max_states:
                    raise SearchBudgetExceeded(
                        f"invariant check on {automaton.name} exceeded {max_states} states"
                    )
                reachable.add(succ)
                parents[succ] = (state, action)
                if not invariant(succ):
                    return result.path_to(succ)
                queue.append(succ)
    return None


def assert_invariant(
    automaton: IOAutomaton,
    invariant: Callable[[State], bool],
    description: str,
    max_states: int = 100_000,
    include_inputs: bool = False,
) -> int:
    """Raise :class:`InvariantViolation` with a witness if the invariant fails.

    Returns the number of states checked when the invariant holds.
    """
    witness = check_invariant(
        automaton, invariant, max_states=max_states, include_inputs=include_inputs
    )
    if witness is not None:
        raise InvariantViolation(
            f"invariant violated: {description}\n{witness.describe()}", witness=witness
        )
    # Re-explore to count states (check_invariant stops early only on failure).
    return len(
        explore(
            automaton, max_states=max_states, include_inputs=include_inputs
        ).reachable
    )


def find_state(
    automaton: IOAutomaton,
    goal: Callable[[State], bool],
    max_states: int = 100_000,
    include_inputs: bool = False,
) -> Optional[Execution]:
    """Find a shortest execution reaching a state satisfying ``goal``."""
    return check_invariant(
        automaton,
        invariant=lambda s: not goal(s),
        max_states=max_states,
        include_inputs=include_inputs,
    )


def reachable_states_satisfying(
    automaton: IOAutomaton,
    predicate: Callable[[State], bool],
    max_states: int = 100_000,
    include_inputs: bool = False,
) -> List[State]:
    """All reachable states satisfying ``predicate`` (exploration-complete)."""
    result = explore(
        automaton, max_states=max_states, include_inputs=include_inputs
    )
    return [s for s in result.reachable if predicate(s)]


def can_reach_from(
    automaton: IOAutomaton,
    start: State,
    goal: Callable[[State], bool],
    max_states: int = 100_000,
) -> bool:
    """Reachability of ``goal`` from a specific configuration.

    This is the primitive valency analysis builds on: "is a 0-decision
    reachable from C?".
    """
    try:
        result = explore(
            automaton, max_states=max_states, initial_states=[start]
        )
    except SearchBudgetExceeded:
        raise
    return any(goal(s) for s in result.reachable)
