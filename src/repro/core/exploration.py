"""State-space exploration: reachability, invariant checking, CTL-lite.

The mechanized impossibility checkers reduce the survey's arguments to
finite graph questions over configuration spaces:

* *pigeonhole* arguments become reachability plus counting;
* *bivalence* arguments become valency labelling of the reachable graph;
* exhaustive protocol search enumerates automata and asks reachability
  questions about each.

This module is the query layer over the shared
:class:`~repro.core.stategraph.StateGraph` engine: every helper routes
through one memoized successor cache and one resumable breadth-first
frontier per automaton, so asking five questions of the same automaton
expands its graph once, not five times.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from .automaton import Action, IOAutomaton, State
from .budget import Budget, BudgetExceeded
from .errors import InvariantViolation, SearchBudgetExceeded
from .execution import Execution
from .stategraph import state_graph


@dataclass
class ReachabilityResult:
    """Outcome of a breadth-first exploration.

    ``parents`` maps each discovered state to the ``(state, action)`` edge
    it was first discovered through, enabling path reconstruction.

    When a :class:`~repro.core.budget.Budget` capped the exploration,
    ``complete`` is False and ``budget_exceeded`` carries the structured
    overdraft.  The partial result is *resumable*: the automaton's shared
    frontier retains the BFS queue, so calling :func:`explore` again (with
    a fresh or absent budget) continues exactly where this run stopped
    instead of restarting.
    """

    automaton: IOAutomaton
    reachable: Set[State]
    parents: Dict[State, Optional[Tuple[State, Action]]]
    complete: bool
    budget_exceeded: Optional[BudgetExceeded] = None

    def path_to(self, target: State) -> Execution:
        """Reconstruct a shortest execution from a start state to ``target``."""
        if target not in self.parents:
            raise ValueError(
                f"state {target!r} was not discovered by this exploration of "
                f"{self.automaton.name} ({len(self.parents)} states searched); "
                "cannot reconstruct a path to it"
            )
        states: List[State] = [target]
        actions: List[Action] = []
        cursor = target
        while self.parents[cursor] is not None:
            prev, action = self.parents[cursor]  # type: ignore[misc]
            states.append(prev)
            actions.append(action)
            cursor = prev
        states.reverse()
        actions.reverse()
        return Execution(self.automaton, tuple(states), tuple(actions))


def explore(
    automaton: IOAutomaton,
    max_states: int = 100_000,
    include_inputs: bool = False,
    actions_filter: Optional[Callable[[State, Action], bool]] = None,
    initial_states: Optional[Iterable[State]] = None,
    budget: Optional[Budget] = None,
    workers=1,
) -> ReachabilityResult:
    """Breadth-first search of the reachable state graph.

    By default only locally controlled actions are explored (closed
    systems); set ``include_inputs`` to also fire every input action in
    every state (open systems under a maximally hostile environment).

    The expansion is served by the automaton's shared
    :class:`~repro.core.stategraph.StateGraph`, so repeated calls (and
    the other helpers in this module) reuse one frontier.  Passing
    ``actions_filter`` or ``initial_states`` asks a question about a
    *different* graph or starting point, which gets a one-off frontier —
    still backed by the memoized successor cache.

    Raises :class:`SearchBudgetExceeded` when more than ``max_states``
    distinct states are discovered.  A :class:`~repro.core.budget.Budget`
    instead caps the search *gracefully*: on overdraft the function
    returns a partial :class:`ReachabilityResult` (``complete=False``)
    rather than raising, and — on the default shared-frontier path — a
    later call resumes the same frontier where the budget ran out.

    ``workers > 1`` shards successor expansion across worker processes
    (:mod:`repro.parallel.explore`) on the shared-frontier path; the
    result — discovery order, parents, partial-on-overdraft state — is
    bit-identical to the serial expansion.  ``actions_filter`` /
    ``initial_states`` questions stay serial (their one-off frontiers
    are not worth a pool).
    """
    graph = state_graph(automaton)
    meter = budget.meter(automaton.name) if budget is not None else None
    if actions_filter is None and initial_states is None:
        frontier = graph.frontier(include_inputs)
        try:
            if workers not in (None, 0, 1):
                from ..parallel.explore import expand_frontier_parallel

                expand_frontier_parallel(
                    graph, include_inputs, max_states, meter, workers
                )
            else:
                frontier.expand_all(max_states, meter)
        except BudgetExceeded as overdraft:
            return ReachabilityResult(
                automaton,
                set(frontier.parents),
                dict(frontier.parents),
                complete=False,
                budget_exceeded=overdraft,
            )
        return ReachabilityResult(
            automaton, set(frontier.parents), dict(frontier.parents), complete=True
        )

    starts = list(
        initial_states if initial_states is not None else automaton.initial_states()
    )
    reachable: Set[State] = set()
    parents: Dict[State, Optional[Tuple[State, Action]]] = {}
    queue: deque = deque()
    for s in starts:
        if s not in reachable:
            reachable.add(s)
            parents[s] = None
            queue.append(s)
    overdraft: Optional[BudgetExceeded] = None
    while queue:
        state = queue.popleft()
        try:
            if meter is not None:
                meter.check_time()
            for action, succ in graph.transitions(state, include_inputs):
                if actions_filter is not None and not actions_filter(state, action):
                    continue
                if succ in reachable:
                    continue
                if len(reachable) >= max_states:
                    raise SearchBudgetExceeded(
                        f"exploration of {automaton.name} exceeded {max_states} states"
                    )
                if meter is not None:
                    meter.charge_states()
                reachable.add(succ)
                parents[succ] = (state, action)
                queue.append(succ)
        except BudgetExceeded as exc:
            overdraft = exc
            break
    return ReachabilityResult(
        automaton,
        reachable,
        parents,
        complete=overdraft is None,
        budget_exceeded=overdraft,
    )


def _check_invariant_counting(
    automaton: IOAutomaton,
    invariant: Callable[[State], bool],
    max_states: int,
    include_inputs: bool,
) -> Tuple[Optional[Execution], int]:
    """Scan the shared frontier for a violation; also count states checked.

    States stream in BFS discovery order, so the first violation found is
    at minimal depth and its parent chain is a shortest counterexample.
    """
    graph = state_graph(automaton)
    frontier = graph.frontier(include_inputs)
    checked = 0
    for state in frontier.states(max_states):
        checked += 1
        if not invariant(state):
            result = ReachabilityResult(
                automaton, set(), frontier.parents, complete=False
            )
            return result.path_to(state), checked
    return None, checked


def check_invariant(
    automaton: IOAutomaton,
    invariant: Callable[[State], bool],
    max_states: int = 100_000,
    include_inputs: bool = False,
) -> Optional[Execution]:
    """Search for a reachable state violating ``invariant``.

    Returns a shortest counterexample execution, or None when the invariant
    holds over the entire (budget-bounded) reachable space.
    """
    witness, _checked = _check_invariant_counting(
        automaton, invariant, max_states, include_inputs
    )
    return witness


def assert_invariant(
    automaton: IOAutomaton,
    invariant: Callable[[State], bool],
    description: str,
    max_states: int = 100_000,
    include_inputs: bool = False,
) -> int:
    """Raise :class:`InvariantViolation` with a witness if the invariant fails.

    Returns the number of states checked when the invariant holds — counted
    during the single exploration pass, not by re-exploring.
    """
    witness, checked = _check_invariant_counting(
        automaton, invariant, max_states, include_inputs
    )
    if witness is not None:
        raise InvariantViolation(
            f"invariant violated: {description}\n{witness.describe()}", witness=witness
        )
    return checked


def find_state(
    automaton: IOAutomaton,
    goal: Callable[[State], bool],
    max_states: int = 100_000,
    include_inputs: bool = False,
) -> Optional[Execution]:
    """Find a shortest execution reaching a state satisfying ``goal``."""
    return check_invariant(
        automaton,
        invariant=lambda s: not goal(s),
        max_states=max_states,
        include_inputs=include_inputs,
    )


def reachable_states_satisfying(
    automaton: IOAutomaton,
    predicate: Callable[[State], bool],
    max_states: int = 100_000,
    include_inputs: bool = False,
) -> List[State]:
    """All reachable states satisfying ``predicate`` (exploration-complete)."""
    graph = state_graph(automaton)
    return [
        s for s in graph.states(max_states, include_inputs) if predicate(s)
    ]


def can_reach_from(
    automaton: IOAutomaton,
    start: State,
    goal: Callable[[State], bool],
    max_states: int = 100_000,
) -> bool:
    """Reachability of ``goal`` from a specific configuration.

    This is the primitive ad-hoc valency queries build on: "is a
    0-decision reachable from C?".  The forward cone of ``start`` is
    memoized on the automaton's shared graph, so repeated queries from
    one configuration pay for its expansion once.
    """
    cone = state_graph(automaton).cone(start, max_states)
    return any(goal(s) for s in cone)
