"""Parallel composition of I/O automata.

Composition is what lets the library build systems out of parts the way the
survey's models do: processes composed with shared variables, nodes composed
with channels, an algorithm composed with its environment.

Compatibility (Lynch–Tuttle):

* no action is an output of two components;
* no internal action of one component is an action of another.

In the composite, an action is performed simultaneously by every component
that has it in its signature; components that do not have it take no step.
An action is an output of the composite iff it is an output of some
component; it is an input iff it is an input of some component and an output
of none.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple

from .automaton import Action, IOAutomaton, Signature, State
from .errors import ModelError


class Composition(IOAutomaton):
    """The parallel composition of a sequence of compatible I/O automata.

    A composite state is a tuple of component states, in component order.
    """

    def __init__(self, components: Sequence[IOAutomaton], name: str = "composition"):
        if not components:
            raise ModelError("composition requires at least one component")
        self.components: Tuple[IOAutomaton, ...] = tuple(components)
        self.name = name
        self._signature = self._compose_signatures()
        # For each action, the indices of components that participate in it.
        self._participants: Dict[Action, Tuple[int, ...]] = {}
        for action in self._signature.all_actions:
            self._participants[action] = tuple(
                i
                for i, comp in enumerate(self.components)
                if action in comp.signature.all_actions
            )

    def _compose_signatures(self) -> Signature:
        outputs: set = set()
        inputs: set = set()
        internals: set = set()
        for i, comp in enumerate(self.components):
            sig = comp.signature
            dup = sig.outputs & outputs
            if dup:
                raise ModelError(
                    f"components share output actions: {sorted(map(repr, dup))}"
                )
            for j, other in enumerate(self.components):
                if i == j:
                    continue
                clash = sig.internals & other.signature.all_actions
                if clash:
                    raise ModelError(
                        f"internal actions of {comp.name} appear in {other.name}: "
                        f"{sorted(map(repr, clash))}"
                    )
            outputs |= sig.outputs
            inputs |= sig.inputs
            internals |= sig.internals
        inputs -= outputs
        return Signature(
            inputs=frozenset(inputs),
            outputs=frozenset(outputs),
            internals=frozenset(internals),
        )

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_states(self) -> Iterator[State]:
        def product(prefix: Tuple[State, ...], rest: Sequence[IOAutomaton]):
            if not rest:
                yield prefix
                return
            for s in rest[0].initial_states():
                yield from product(prefix + (s,), rest[1:])

        yield from product((), self.components)

    def enabled_actions(self, state: State) -> Iterator[Action]:
        seen = set()
        for i, comp in enumerate(self.components):
            for action in comp.enabled_actions(state[i]):
                if action in seen:
                    continue
                # The controlling component enables it; every other
                # participant has it as an input, hence always enabled.
                seen.add(action)
                yield action

    def apply(self, state: State, action: Action) -> Iterator[State]:
        self._signature.classify(action)
        participants = self._participants[action]

        def expand(idx: int, current: Tuple[State, ...]) -> Iterator[Tuple[State, ...]]:
            if idx == len(participants):
                yield current
                return
            comp_index = participants[idx]
            comp = self.components[comp_index]
            for succ in comp.apply(state[comp_index], action):
                nxt = current[:comp_index] + (succ,) + current[comp_index + 1:]
                yield from expand(idx + 1, nxt)

        # For a locally controlled action, the controlling component must
        # actually enable it; apply() on that component returns no successors
        # otherwise, which makes the composite correctly return nothing.
        yield from expand(0, tuple(state))

    def tasks(self) -> Sequence[FrozenSet[Action]]:
        """Component tasks are preserved: fairness is per component task."""
        tasks: List[FrozenSet[Action]] = []
        for comp in self.components:
            tasks.extend(comp.tasks())
        return tasks

    def component_state(self, state: State, index: int) -> State:
        """Project a composite state onto component ``index``."""
        return state[index]

    def component_named(self, name: str) -> int:
        """Index of the component with the given name."""
        for i, comp in enumerate(self.components):
            if comp.name == name:
                return i
        raise ModelError(f"no component named {name!r}")


def compose(*components: IOAutomaton, name: str = "composition") -> Composition:
    """Convenience wrapper: ``compose(a, b, c)``."""
    return Composition(components, name=name)
