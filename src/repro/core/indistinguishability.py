"""Indistinguishability: the one idea behind all hundred proofs.

The survey's §3.1 is unambiguous: *"There is only one fundamental underlying
idea on which all of the proofs in this area are based, and that is the
limitation imposed by local knowledge in a distributed system.  If a process
sees the same thing in two executions, it will behave the same in both."*

This module makes "sees the same thing" computable.  A :class:`View`
extracts, from an execution, what one process can observe: its own sequence
of local states and the actions it participates in.  Two executions are
*indistinguishable to p* when p's views are equal.  Scenario arguments,
chain arguments and stretching arguments all reduce to exhibiting
executions with equal views but incompatible required behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, List, Optional, Tuple

from .automaton import Action, State
from .execution import Execution


@dataclass(frozen=True)
class View:
    """What a single observer sees of an execution.

    ``local_states`` is the observer's own state after each of its steps
    (beginning with its initial local state); ``observed_actions`` is the
    subsequence of actions it participates in.
    """

    observer: Hashable
    local_states: Tuple[State, ...]
    observed_actions: Tuple[Action, ...]

    def __eq__(self, other) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return (
            self.observer == other.observer
            and self.local_states == other.local_states
            and self.observed_actions == other.observed_actions
        )

    def __hash__(self) -> int:
        return hash((self.observer, self.local_states, self.observed_actions))


class ViewExtractor:
    """Extracts a process's view from a system execution.

    Parameterized by two functions describing the system model:

    * ``local_state(system_state, observer)`` — the observer's component of
      a global state;
    * ``participates(action, observer)`` — whether the observer takes part
      in (hence observes) a given action.
    """

    def __init__(
        self,
        local_state: Callable[[State, Hashable], State],
        participates: Callable[[Action, Hashable], bool],
    ):
        self._local_state = local_state
        self._participates = participates

    def view(self, execution: Execution, observer: Hashable) -> View:
        """The observer's view of ``execution``.

        The view records the observer's local state only at the points where
        the observer takes a step (plus initially) — between its own steps
        an asynchronous process cannot observe global time passing.
        """
        locals_seen: List[State] = [
            self._local_state(execution.first_state, observer)
        ]
        observed: List[Action] = []
        for _pre, action, post in execution.steps():
            if self._participates(action, observer):
                observed.append(action)
                locals_seen.append(self._local_state(post, observer))
        return View(observer, tuple(locals_seen), tuple(observed))

    def indistinguishable(
        self,
        execution_a: Execution,
        execution_b: Execution,
        observer: Hashable,
    ) -> bool:
        """True when the observer cannot tell the two executions apart."""
        return self.view(execution_a, observer) == self.view(execution_b, observer)

    def distinguishing_observers(
        self,
        execution_a: Execution,
        execution_b: Execution,
        observers: Iterable[Hashable],
    ) -> List[Hashable]:
        """The observers whose views differ between the two executions."""
        return [
            obs
            for obs in observers
            if not self.indistinguishable(execution_a, execution_b, obs)
        ]


@dataclass(frozen=True)
class IndistinguishabilityChain:
    """A chain of executions, each consecutive pair indistinguishable to someone.

    Chain arguments (the t+1-round lower bound, Two Generals) construct a
    sequence ``e_0, ..., e_k`` where ``e_0`` forces decision 0, ``e_k``
    forces decision 1, and each consecutive pair looks the same to some
    nonfaulty process — so the decision value cannot change anywhere along
    the chain: contradiction.

    ``links[i]`` is the observer that cannot distinguish ``executions[i]``
    from ``executions[i+1]``.
    """

    executions: Tuple[Execution, ...]
    links: Tuple[Hashable, ...]

    def __post_init__(self):
        if len(self.links) != len(self.executions) - 1:
            raise ValueError(
                "a chain of k+1 executions needs exactly k links; got "
                f"{len(self.executions)} executions, {len(self.links)} links"
            )

    def __len__(self) -> int:
        return len(self.executions)

    def validate(self, extractor: ViewExtractor) -> None:
        """Re-check every link; raises AssertionError on a broken chain."""
        for i, observer in enumerate(self.links):
            if not extractor.indistinguishable(
                self.executions[i], self.executions[i + 1], observer
            ):
                raise AssertionError(
                    f"chain link {i} broken: observer {observer!r} can "
                    f"distinguish executions {i} and {i + 1}"
                )


def decisions_constant_along_chain(
    chain: IndistinguishabilityChain,
    decision_of: Callable[[Execution, Hashable], Optional[Hashable]],
) -> bool:
    """Check the chain-argument conclusion: decision value never changes.

    ``decision_of(execution, observer)`` returns the value the observer
    decides in that execution (None if it never decides).  For a valid
    agreement protocol, the decision of the linking observer must be equal
    in the two linked executions, and agreement forces every process in one
    execution to that same value — so the value propagates along the chain.
    Returns True when the chain exhibits constant decisions, meaning the
    construction successfully proves that all-0 and all-1 scenarios cannot
    both behave correctly.
    """
    first = chain.executions[0]
    reference = decision_of(first, chain.links[0])
    for i, observer in enumerate(chain.links):
        left = decision_of(chain.executions[i], observer)
        right = decision_of(chain.executions[i + 1], observer)
        if left is None or right is None or left != right or left != reference:
            return False
    return True
