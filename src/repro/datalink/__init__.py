"""Communication protocols over lossy physical channels (survey §2.5)."""

from .impossibility import bounded_header_attack, crash_attack, packet_growth
from .protocols import (
    AlternatingBitReceiver,
    AlternatingBitSender,
    StenningReceiver,
    StenningSender,
)
from .simulate import (
    ChannelAdversary,
    DataLinkReceiver,
    DataLinkResult,
    DataLinkSender,
    FairLossyScheduler,
    ScriptedAdversary,
    run_datalink,
)

__all__ = [
    "DataLinkSender",
    "DataLinkReceiver",
    "DataLinkResult",
    "ChannelAdversary",
    "FairLossyScheduler",
    "ScriptedAdversary",
    "run_datalink",
    "AlternatingBitSender",
    "AlternatingBitReceiver",
    "StenningSender",
    "StenningReceiver",
    "crash_attack",
    "bounded_header_attack",
    "packet_growth",
]
