"""Data-link protocols: alternating bit and Stenning's protocol (§2.5).

Two classic constructions over lossy physical channels:

* :class:`AlternatingBitSender` / :class:`AlternatingBitReceiver` — one
  header bit, correct over lossy *FIFO* channels with fair delivery;
* :class:`StenningSender` / :class:`StenningReceiver` — unbounded sequence
  numbers, correct even under reordering and duplication; the
  ``modulus`` parameter caps the header space, manufacturing exactly the
  bounded-header protocols whose impossibility
  :mod:`repro.datalink.impossibility` demonstrates.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from .simulate import DataLinkReceiver, DataLinkSender


class AlternatingBitSender(DataLinkSender):
    """Retransmit the current message tagged with a bit; flip on ack."""

    def __init__(self):
        self.queue: List[Hashable] = []
        self.bit = 0
        self.cursor = 0

    def load(self, messages: Sequence[Hashable]) -> None:
        self.queue = list(messages)
        self.cursor = 0
        self.bit = 0

    def next_packet(self) -> Optional[Hashable]:
        if self.done():
            return None
        return ("data", self.bit, self.queue[self.cursor])

    def on_ack(self, packet: Hashable) -> None:
        if packet == ("ack", self.bit):
            self.cursor += 1
            self.bit ^= 1

    def done(self) -> bool:
        return self.cursor >= len(self.queue)

    def crash(self) -> None:
        # Volatile state lost: the bit resets; the message queue is stable
        # storage (the impossibility concerns the protocol state).
        self.bit = 0


class AlternatingBitReceiver(DataLinkReceiver):
    """Deliver packets whose bit matches the expected bit; always ack."""

    def __init__(self):
        self.expected = 0

    def on_packet(self, packet: Hashable) -> Tuple[List[Hashable], Optional[Hashable]]:
        if not (isinstance(packet, tuple) and packet[0] == "data"):
            return [], None
        _tag, bit, message = packet
        if bit == self.expected:
            self.expected ^= 1
            return [message], ("ack", bit)
        return [], ("ack", bit)

    def crash(self) -> None:
        self.expected = 0


class StenningSender(DataLinkSender):
    """Retransmit the current message with its sequence number.

    ``modulus`` wraps the sequence numbers to a finite header space; None
    means unbounded headers (the correct protocol).
    """

    def __init__(self, modulus: Optional[int] = None):
        self.queue: List[Hashable] = []
        self.cursor = 0
        self.modulus = modulus

    def _seq(self, index: int) -> int:
        return index if self.modulus is None else index % self.modulus

    def load(self, messages: Sequence[Hashable]) -> None:
        self.queue = list(messages)
        self.cursor = 0

    def next_packet(self) -> Optional[Hashable]:
        if self.done():
            return None
        return ("data", self._seq(self.cursor), self.queue[self.cursor])

    def on_ack(self, packet: Hashable) -> None:
        if (
            isinstance(packet, tuple)
            and packet[0] == "ack"
            and packet[1] == self._seq(self.cursor)
        ):
            self.cursor += 1

    def done(self) -> bool:
        return self.cursor >= len(self.queue)

    def crash(self) -> None:
        self.cursor = 0  # volatile progress lost


class StenningReceiver(DataLinkReceiver):
    """Deliver each expected sequence number once; ack what arrives."""

    def __init__(self, modulus: Optional[int] = None):
        self.expected = 0
        self.modulus = modulus

    def _seq(self, index: int) -> int:
        return index if self.modulus is None else index % self.modulus

    def on_packet(self, packet: Hashable) -> Tuple[List[Hashable], Optional[Hashable]]:
        if not (isinstance(packet, tuple) and packet[0] == "data"):
            return [], None
        _tag, seq, message = packet
        if seq == self._seq(self.expected):
            self.expected += 1
            return [message], ("ack", seq)
        return [], ("ack", seq)

    def crash(self) -> None:
        self.expected = 0
