"""The data-link layer simulation: senders, receivers, hostile channels.

The survey's §2.5 results (Lynch–Mansour–Fekete [78], Spinelli [97], and
the folk wisdom they formalize) are about implementing reliable message
delivery over *physical channels* that lose, duplicate and reorder
packets — and about what crashes and bounded packet headers cost.

This module is the execution harness: a :class:`ChannelAdversary` owns
both directions of the physical channel and decides, step by step, which
buffered packet to deliver, duplicate, or drop.  The harness records what
the receiver delivered so the correctness conditions — exactly-once,
in-order delivery of the sent message sequence — can be checked directly.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from ..core.budget import BudgetMeter
from ..core.errors import ModelError
from ..core.runtime import (
    CRASH,
    DELIVER,
    DROP,
    DUPLICATE,
    HALT,
    SEND,
    FaultAdversary,
    SimulationRuntime,
    Trace,
)


class DataLinkSender(ABC):
    """Sender-side protocol: turn messages into packets, react to acks."""

    @abstractmethod
    def load(self, messages: Sequence[Hashable]) -> None:
        """Accept the message sequence to transmit."""

    @abstractmethod
    def next_packet(self) -> Optional[Hashable]:
        """The packet to (re)transmit now, or None if idle/done."""

    @abstractmethod
    def on_ack(self, packet: Hashable) -> None:
        """An acknowledgement packet arrived."""

    @abstractmethod
    def done(self) -> bool:
        """All loaded messages acknowledged."""

    def crash(self) -> None:
        """Lose all volatile state (survey: crashes that erase memory)."""


class DataLinkReceiver(ABC):
    """Receiver-side protocol: packets in, delivered messages + acks out."""

    @abstractmethod
    def on_packet(self, packet: Hashable) -> Tuple[List[Hashable], Optional[Hashable]]:
        """React to a data packet: (messages to deliver, ack packet)."""

    def crash(self) -> None:
        """Lose all volatile state."""


@dataclass
class DataLinkResult:
    sent_messages: Tuple[Hashable, ...]
    delivered: List[Hashable]
    data_packets: int
    ack_packets: int
    steps: int
    sender_done: bool
    trace: Optional[Trace] = field(repr=False, default=None, compare=False)

    @property
    def exactly_once_in_order(self) -> bool:
        return list(self.delivered) == list(self.sent_messages)

    @property
    def duplicates(self) -> bool:
        return len(self.delivered) > len(set(
            (i, m) for i, m in enumerate(self.delivered)
        )) or self._has_dup()

    def _has_dup(self) -> bool:
        # A duplicate is a delivered subsequence item appearing more often
        # than it was sent.
        from collections import Counter

        sent = Counter(self.sent_messages)
        got = Counter(self.delivered)
        return any(got[m] > sent[m] for m in got)


class ChannelAdversary(FaultAdversary, ABC):
    """Controls both channel directions, one scheduling decision at a time.

    The datalink instantiation of the unified
    :class:`~repro.core.runtime.FaultAdversary`: it wields full channel
    control through :meth:`act` rather than the message-transform or
    scheduling powers.

    Each step the adversary sees the forward buffer (data packets in
    flight) and backward buffer (acks) and returns one action:

    * ("transmit",)            — let the sender (re)send its packet;
    * ("deliver", "fwd", i)    — deliver forward buffer item i (removed);
    * ("deliver", "bwd", i)    — deliver backward buffer item i;
    * ("drop", "fwd"/"bwd", i) — destroy a buffered packet;
    * ("dup", "fwd"/"bwd", i)  — duplicate a buffered packet;
    * ("crash", "sender"/"receiver") — erase an endpoint's state;
    * ("halt",)                — end the run.
    """

    @abstractmethod
    def act(self, fwd: List[Hashable], bwd: List[Hashable],
            sender_done: bool, steps: int) -> Tuple:
        ...


class FairLossyScheduler(ChannelAdversary):
    """Randomly drops packets with probability ``loss``, but is fair: it
    keeps delivering, so a retransmitting protocol eventually succeeds.
    FIFO delivery (index 0 only) unless ``reorder`` is set."""

    def __init__(self, loss: float = 0.3, seed: int = 0,
                 reorder: bool = False):
        super().__init__()
        self.loss = loss
        self.seed = seed
        self.rng = random.Random(seed)
        self.reorder = reorder

    def reset(self):
        self.rng = random.Random(self.seed)

    def act(self, fwd, bwd, sender_done, steps):
        choices = []
        if fwd:
            choices.append("fwd")
        if bwd:
            choices.append("bwd")
        if not sender_done:
            choices.append("transmit")
        if not choices:
            return ("halt",)
        pick = choices[self.rng.randrange(len(choices))]
        if pick == "transmit":
            return ("transmit",)
        buffer = fwd if pick == "fwd" else bwd
        index = self.rng.randrange(len(buffer)) if self.reorder else 0
        if self.rng.random() < self.loss:
            return ("drop", pick, index)
        return ("deliver", pick, index)


class ScriptedAdversary(ChannelAdversary):
    """Replays an explicit action script, then halts."""

    def __init__(self, script: Sequence[Tuple]):
        super().__init__()
        self.script = list(script)
        self.cursor = 0

    def reset(self):
        self.cursor = 0

    def act(self, fwd, bwd, sender_done, steps):
        if self.cursor >= len(self.script):
            return ("halt",)
        action = self.script[self.cursor]
        self.cursor += 1
        return action


def run_datalink(
    sender: DataLinkSender,
    receiver: DataLinkReceiver,
    messages: Sequence[Hashable],
    adversary: ChannelAdversary,
    max_steps: int = 50_000,
    *,
    sender_factory: Optional[Callable[[], DataLinkSender]] = None,
    receiver_factory: Optional[Callable[[], DataLinkReceiver]] = None,
    record_trace: bool = True,
    meter: Optional[BudgetMeter] = None,
) -> DataLinkResult:
    """Run the protocol against the adversary; return what was delivered.

    The run is recorded in the unified trace schema (one event per channel
    action).  Senders and receivers are stateful, so the trace carries a
    replayer only when ``sender_factory``/``receiver_factory`` provide
    fresh endpoints; the adversary is ``reset()`` before each replay.  A
    ``meter`` charges one step per channel action, so campaign budgets
    preempt adversaries that never halt.
    """
    sender.load(messages)
    runtime = SimulationRuntime(
        substrate="datalink",
        protocol=f"{type(sender).__name__}/{type(receiver).__name__}",
        adversary=adversary,
        record=record_trace,
    )
    record = record_trace
    fwd: List[Hashable] = []
    bwd: List[Hashable] = []
    delivered: List[Hashable] = []
    data_packets = 0
    ack_packets = 0
    steps = 0
    while steps < max_steps:
        if meter is not None:
            meter.charge_steps()
        steps += 1
        action = adversary.act(list(fwd), list(bwd), sender.done(), steps)
        kind = action[0]
        if kind == "halt":
            if record:
                runtime.emit(HALT, "channel", time=steps)
            break
        if kind == "transmit":
            packet = sender.next_packet()
            if packet is not None:
                fwd.append(packet)
                data_packets += 1
                if record:
                    runtime.emit(SEND, "sender", packet, time=steps)
            continue
        if kind in ("deliver", "drop", "dup"):
            _tag, side, index = action
            buffer = fwd if side == "fwd" else bwd
            if not buffer:
                continue
            index = min(index, len(buffer) - 1)
            if kind == "drop":
                packet = buffer.pop(index)
                if record:
                    runtime.emit(DROP, side, packet, time=steps)
                continue
            if kind == "dup":
                buffer.append(buffer[index])
                if record:
                    runtime.emit(DUPLICATE, side, buffer[-1], time=steps)
                continue
            packet = buffer.pop(index)
            if side == "fwd":
                if record:
                    runtime.emit(DELIVER, "receiver", packet, time=steps)
                out, ack = receiver.on_packet(packet)
                delivered.extend(out)
                if ack is not None:
                    bwd.append(ack)
                    ack_packets += 1
            else:
                if record:
                    runtime.emit(DELIVER, "sender", packet, time=steps)
                sender.on_ack(packet)
            continue
        if kind == "crash":
            _tag, who = action
            if record:
                runtime.emit(CRASH, who, time=steps)
            if who == "sender":
                sender.crash()
            else:
                receiver.crash()
            continue
        raise ModelError(f"unknown adversary action {action!r}")

    trace: Optional[Trace] = None
    if record:
        replayer = None
        if sender_factory is not None and receiver_factory is not None:
            def replayer(
                _sf=sender_factory, _rf=receiver_factory,
                _messages=tuple(messages), _adversary=adversary,
                _max=max_steps,
            ) -> Trace:
                _adversary.reset()
                return run_datalink(
                    _sf(), _rf(), _messages, _adversary, _max,
                    sender_factory=_sf, receiver_factory=_rf,
                ).trace

        trace = runtime.finish(
            outcome={
                "delivered": tuple(delivered),
                "data_packets": data_packets,
                "ack_packets": ack_packets,
                "sender_done": sender.done(),
            },
            replayer=replayer,
        )
    return DataLinkResult(
        sent_messages=tuple(messages),
        delivered=delivered,
        data_packets=data_packets,
        ack_packets=ack_packets,
        steps=steps,
        sender_done=sender.done(),
        trace=trace,
    )
