"""Data-link impossibility demonstrations (§2.5, [78]).

Lynch–Mansour–Fekete: reliable message delivery over typical physical
channels is impossible (1) if crashes can erase protocol memory, or
(2) with bounded packet headers and a bounded best case, over channels
that duplicate/reorder.  Their proofs let the channel "steal" packets and
replay them to fool the receiver; the constructive adversaries here do
exactly that to concrete protocols:

* :func:`crash_attack` — against the alternating-bit protocol: a receiver
  crash between delivery and acknowledgement resets its expected bit, and
  the retransmission gets delivered *again*;
* :func:`bounded_header_attack` — against Stenning-with-modulus: an old
  packet is duplicated into the channel and replayed one "wrap" later,
  where its stolen header is indistinguishable from the expected one —
  while the same script leaves the unbounded-header protocol unharmed;
* :func:`packet_growth` — the quantitative corollary: the correct
  unbounded protocol pays for safety with headers that grow with the
  message count, and retransmission counts that grow with loss.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..core.errors import ModelError
from ..impossibility.certificate import CounterexampleCertificate
from .protocols import (
    AlternatingBitReceiver,
    AlternatingBitSender,
    StenningReceiver,
    StenningSender,
)
from .simulate import (
    FairLossyScheduler,
    ScriptedAdversary,
    run_datalink,
)


def crash_attack() -> CounterexampleCertificate:
    """Defeat the alternating-bit protocol with one receiver crash.

    Deliver message 0; destroy the ack; crash the receiver (its expected
    bit resets); let the sender retransmit.  The receiver, fresh out of
    its crash, accepts the same packet again: duplication.
    """
    script = [
        ("transmit",),            # ("data", 0, "m0") enters the channel
        ("deliver", "fwd", 0),    # receiver delivers m0, acks
        ("drop", "bwd", 0),       # the ack dies
        ("crash", "receiver"),    # expected bit resets to 0
        ("transmit",),            # sender retransmits ("data", 0, "m0")
        ("deliver", "fwd", 0),    # receiver delivers m0 AGAIN
        ("halt",),
    ]
    result = run_datalink(
        AlternatingBitSender(), AlternatingBitReceiver(),
        ["m0", "m1"], ScriptedAdversary(script),
    )
    if result.delivered != ["m0", "m0"]:
        raise ModelError(
            f"crash attack failed: delivered {result.delivered!r}"
        )
    return CounterexampleCertificate(
        claim=(
            "reliable delivery is impossible when crashes erase protocol "
            "memory: one receiver crash makes the alternating-bit protocol "
            "deliver m0 twice"
        ),
        technique="message stealing (crash replay)",
        evidence=result,
        replay=lambda: run_datalink(
            AlternatingBitSender(), AlternatingBitReceiver(),
            ["m0", "m1"], ScriptedAdversary(script),
        ).delivered == ["m0", "m0"],
        details={"delivered": result.delivered},
    )


def _wraparound_script() -> List[Tuple]:
    """The packet-stealing script: steal a duplicate of the first data
    packet, progress the protocol one full header wrap, then replay."""
    return [
        ("transmit",),            # ("data", 0, a)
        ("dup", "fwd", 0),        # the channel steals a copy
        ("deliver", "fwd", 0),    # a delivered, acked
        ("deliver", "bwd", 0),    # sender advances to b
        ("transmit",),            # ("data", 1, b)  [stolen copy is index 0]
        ("deliver", "fwd", 1),    # b delivered, acked
        ("deliver", "bwd", 0),    # sender advances to c
        ("transmit",),            # ("data", 0 mod 2, c)
        ("drop", "fwd", 1),       # c vanishes
        ("deliver", "fwd", 0),    # the STOLEN copy of a arrives instead
        ("deliver", "bwd", 0),    # its ack convinces the sender c arrived
        ("halt",),
    ]


def bounded_header_attack(modulus: int = 2) -> CounterexampleCertificate:
    """Defeat bounded-header Stenning by replaying a stolen packet one
    header wrap later; verify the unbounded protocol survives the very
    same channel behaviour."""
    script = _wraparound_script()
    messages = ["a", "b", "c"]
    bounded = run_datalink(
        StenningSender(modulus=modulus), StenningReceiver(modulus=modulus),
        messages, ScriptedAdversary(script),
    )
    unbounded = run_datalink(
        StenningSender(), StenningReceiver(),
        messages, ScriptedAdversary(script),
    )
    if bounded.exactly_once_in_order:
        raise ModelError("bounded-header protocol unexpectedly survived")
    if unbounded.duplicates:
        raise ModelError("unbounded-header protocol was fooled — engine bug")
    return CounterexampleCertificate(
        claim=(
            f"with headers bounded to {modulus} values, a stolen packet "
            "replayed one wrap later is indistinguishable from fresh data: "
            f"the receiver delivered {bounded.delivered!r} for "
            f"{messages!r}, and the sender believes it is done"
        ),
        technique="message stealing (header wraparound)",
        evidence=(bounded, unbounded),
        details={
            "bounded_delivered": bounded.delivered,
            "bounded_sender_done": bounded.sender_done,
            "unbounded_delivered": unbounded.delivered,
        },
    )


def packet_growth(
    message_counts: Sequence[int] = (4, 8, 16, 32),
    loss: float = 0.4,
    seed: int = 7,
) -> Dict[int, Dict[str, float]]:
    """Measure what correctness costs the unbounded protocol.

    For each message count: the packets sent per message under the fair
    lossy channel, and the header bits needed (log2 of the largest
    sequence number) — the quantity the survey's open question 5 is about.
    """
    out: Dict[int, Dict[str, float]] = {}
    for count in message_counts:
        messages = [f"m{i}" for i in range(count)]
        result = run_datalink(
            StenningSender(), StenningReceiver(), messages,
            FairLossyScheduler(loss=loss, seed=seed, reorder=True),
            max_steps=200_000,
        )
        if not result.exactly_once_in_order:
            raise ModelError(
                f"unbounded Stenning failed under fair loss: {result.delivered!r}"
            )
        out[count] = {
            "packets_per_message": result.data_packets / count,
            "header_bits": math.ceil(math.log2(max(count, 2))),
            "total_packets": float(result.data_packets),
        }
    return out
