"""Impossibility-as-a-service: the query layer over the certificate store.

A :class:`QueryService` answers the repository's standing questions —

* ``flp-analysis`` — which way does this protocol fail FLP (the E6
  dichotomy: agreement violation or crash-blocking)?
* ``valency`` — the valency of the initial configuration for one input
  vector of one protocol;
* ``register-search`` — the exhaustive failure census over the bounded
  register-consensus program class at a given depth;
* ``chaos-campaign`` — a full seeded chaos campaign, counterexamples and
  all

— from the :class:`~repro.service.store.CertificateStore` when a
verified entry exists, and by running the live engine on a miss.  The
justification is the repository's determinism invariant: every one of
these results is a pure function of its canonicalized request, so a
stored answer *is* the answer, provided its integrity verifies (the
store's job).  Incomplete results (budget overdrafts) are returned to
the caller but never stored — the store only holds answers, not
progress.

Batching: :meth:`QueryService.submit` returns a shared
:class:`PendingQuery` handle, deduplicating identical in-flight requests
by key fingerprint; :meth:`~QueryService.drain` (or any handle's
``result()``) resolves every pending request at once, checking the store
first and fanning the remaining misses out across the PR-4
:class:`~repro.parallel.pool.WorkerPool` when the service was built with
``workers > 1``.  A single serial miss instead threads ``workers`` into
the engine itself, so one big register search or campaign shards
internally.  The service's :class:`~repro.core.budget.Budget` is
threaded into every live fallback that accepts one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.budget import Budget
from ..parallel.pool import WorkerPool, resolve_workers
from .keys import QueryKey, decode_canonical, encode_canonical
from .store import CertificateStore

QUERY_KINDS = (
    "flp-analysis",
    "valency",
    "register-search",
    "chaos-campaign",
    "detector-run",
    "lease-run",
    "benor-run",
    "gst-run",
)


# ---------------------------------------------------------------------------
# Key constructors (one per query kind, defaults pinned for stable keys)
# ---------------------------------------------------------------------------


def flp_key(protocol: str, n: int = 2, stall_stages: int = 24) -> QueryKey:
    """Key for the full FLP analysis of one candidate protocol."""
    return QueryKey.make(
        "flp-analysis", protocol=protocol, n=n, stall_stages=stall_stages
    )


def valency_key(protocol: str, n: int, inputs: Tuple) -> QueryKey:
    """Key for the valency of one initial configuration."""
    return QueryKey.make("valency", protocol=protocol, n=n, inputs=inputs)


def register_search_key(depth: int = 2) -> QueryKey:
    """Key for the exhaustive register-consensus census at ``depth``."""
    return QueryKey.make("register-search", depth=depth)


def campaign_key(
    targets: Optional[Tuple[str, ...]],
    runs: int = 40,
    master_seed: int = 0,
    shrink: bool = True,
    shrink_checks: int = 256,
) -> QueryKey:
    """Key for one seeded chaos campaign (``targets=None`` = full roster)."""
    return QueryKey.make(
        "chaos-campaign",
        targets=targets,
        runs=runs,
        master_seed=master_seed,
        shrink=shrink,
        shrink_checks=shrink_checks,
    )


def detector_run_key(
    atoms: Tuple = (),
    seed: int = 0,
    n: int = 4,
    horizon: int = 40,
    heartbeat_every: int = 3,
    initial_timeout: int = 4,
    adaptive: bool = True,
    jitter: int = 1,
) -> QueryKey:
    """Key for one heartbeat failure-detector run (circumvention layer)."""
    return QueryKey.make(
        "detector-run",
        atoms=tuple(atoms),
        seed=seed,
        n=n,
        horizon=horizon,
        heartbeat_every=heartbeat_every,
        initial_timeout=initial_timeout,
        adaptive=adaptive,
        jitter=jitter,
    )


def lease_run_key(
    atoms: Tuple = (),
    seed: int = 0,
    n: int = 4,
    horizon: int = 48,
    lease_len: int = 8,
    renew_margin: int = 2,
    staleness_bound: int = 8,
    write_every: int = 3,
    read_every: int = 5,
    buggy_no_quorum: bool = False,
) -> QueryKey:
    """Key for one quorum-lease run under a partition schedule."""
    return QueryKey.make(
        "lease-run",
        atoms=tuple(atoms),
        seed=seed,
        n=n,
        horizon=horizon,
        lease_len=lease_len,
        renew_margin=renew_margin,
        staleness_bound=staleness_bound,
        write_every=write_every,
        read_every=read_every,
        buggy_no_quorum=buggy_no_quorum,
    )


def benor_run_key(
    atoms: Tuple = (),
    seed: int = 0,
    n: int = 4,
    t: int = 1,
    inputs: Optional[Tuple[int, ...]] = None,
    biased_coin: bool = False,
    max_events: int = 4000,
) -> QueryKey:
    """Key for one Ben-Or randomized-consensus run (circumvention layer)."""
    return QueryKey.make(
        "benor-run",
        atoms=tuple(atoms),
        seed=seed,
        n=n,
        t=t,
        inputs=None if inputs is None else tuple(inputs),
        biased_coin=biased_coin,
        max_events=max_events,
    )


def gst_run_key(
    atoms: Tuple = (),
    seed: int = 0,
    inputs: Tuple[int, ...] = (0, 1, 1, 0),
    t: int = 1,
    max_rounds: int = 64,
    default_gst: Optional[int] = None,
) -> QueryKey:
    """Key for one DLS consensus run under a partial-synchrony schedule."""
    return QueryKey.make(
        "gst-run",
        atoms=tuple(atoms),
        seed=seed,
        inputs=tuple(inputs),
        t=t,
        max_rounds=max_rounds,
        default_gst=default_gst,
    )


# ---------------------------------------------------------------------------
# Live handlers (module-level and import-lazy: picklable for the worker
# fan-out, and free of import cycles with the engines they call)
# ---------------------------------------------------------------------------


def _protocol_instance(name: str):
    from ..asynchronous.flp import ALL_CANDIDATES

    registry = {cls.name: cls for cls in ALL_CANDIDATES}
    if name not in registry:
        raise ValueError(
            f"unknown async protocol {name!r}; known: {sorted(registry)}"
        )
    return registry[name]()


def flp_report_payload(report) -> Dict[str, Any]:
    """The JSON-native store payload of an :class:`FLPReport`."""
    return {
        "protocol": report.protocol_name,
        "n": report.n,
        "failure_mode": report.failure_mode,
        "bivalent_initial_inputs": encode_canonical(
            report.bivalent_initial_inputs
        ),
        "blocking_crash": report.blocking_crash,
        "initial_valencies": [
            [
                encode_canonical(inputs),
                [encode_canonical(v) for v in sorted(valency, key=repr)],
            ]
            for inputs, valency in report.initial_valencies
        ],
        "stall_stages": (
            report.stall.stages if report.stall is not None else None
        ),
        "stall_stayed_bivalent": (
            report.stall.stayed_bivalent if report.stall is not None else None
        ),
    }


def _handle_flp_analysis(
    params: Dict[str, Any], budget: Optional[Budget], workers
) -> Tuple[Dict[str, Any], bool]:
    from ..asynchronous.flp import flp_analysis

    report = flp_analysis(
        _protocol_instance(params["protocol"]),
        n=params.get("n", 2),
        stall_stages=params.get("stall_stages", 24),
    )
    return flp_report_payload(report), True


def _handle_valency(
    params: Dict[str, Any], budget: Optional[Budget], workers
) -> Tuple[Dict[str, Any], bool]:
    from ..asynchronous.network import AsyncConsensusSystem
    from ..impossibility.bivalence import ValencyAnalyzer

    protocol = _protocol_instance(params["protocol"])
    n = params["n"]
    inputs = params["inputs"]
    system = AsyncConsensusSystem(protocol, n)
    analyzer = ValencyAnalyzer(system)
    valency = analyzer.valency(system.configuration_for(inputs))
    payload = {
        "protocol": protocol.name,
        "n": n,
        "inputs": encode_canonical(inputs),
        "valency": [encode_canonical(v) for v in sorted(valency, key=repr)],
        "bivalent": len(valency) >= 2,
    }
    return payload, True


def register_outcome_payload(outcome) -> Dict[str, Any]:
    """The JSON-native store payload of a :class:`RegisterSearchOutcome`."""
    return {
        "depth": outcome.depth,
        "candidates": outcome.candidates,
        "solutions": [encode_canonical(p) for p in outcome.solutions],
        "agreement_failures": outcome.agreement_failures,
        "validity_failures": outcome.validity_failures,
        "wait_freedom_failures": outcome.wait_freedom_failures,
    }


def _handle_register_search(
    params: Dict[str, Any], budget: Optional[Budget], workers
) -> Tuple[Dict[str, Any], bool]:
    from ..registers.exhaustive import search_register_consensus

    outcome = search_register_consensus(
        depth=params.get("depth", 2), budget=budget, workers=workers
    )
    return register_outcome_payload(outcome), outcome.complete


def _handle_chaos_campaign(
    params: Dict[str, Any], budget: Optional[Budget], workers
) -> Tuple[Dict[str, Any], bool]:
    from ..chaos.campaign import report_to_payload, run_campaign
    from ..chaos.targets import target_registry

    names = params.get("targets")
    roster = None
    if names is not None:
        registry = target_registry()
        unknown = [name for name in names if name not in registry]
        if unknown:
            raise ValueError(
                f"unknown chaos targets {unknown}; known: {sorted(registry)}"
            )
        roster = [registry[name] for name in names]
    report = run_campaign(
        targets=roster,
        runs=params.get("runs", 40),
        master_seed=params.get("master_seed", 0),
        shrink=params.get("shrink", True),
        shrink_checks=params.get("shrink_checks", 256),
        budget=budget,
        workers=workers,
    )
    return report_to_payload(report), report.complete


def _handle_detector_run(
    params: Dict[str, Any], budget: Optional[Budget], workers
) -> Tuple[Dict[str, Any], bool]:
    from ..circumvention.detectors import run_heartbeat_detector

    run = run_heartbeat_detector(
        tuple(params.get("atoms", ())),
        params.get("seed", 0),
        n=params.get("n", 4),
        horizon=params.get("horizon", 40),
        heartbeat_every=params.get("heartbeat_every", 3),
        initial_timeout=params.get("initial_timeout", 4),
        adaptive=params.get("adaptive", True),
        jitter=params.get("jitter", 1),
        budget=budget,
    )
    payload = {
        "trace_fingerprint": run.trace.fingerprint(),
        "leaders": encode_canonical(tuple(sorted(run.leaders.items()))),
        "suspects": encode_canonical(tuple(sorted(run.suspects.items()))),
        "leader_changes": run.leader_changes,
        "last_change": run.last_change,
    }
    return payload, run.complete


def _handle_lease_run(
    params: Dict[str, Any], budget: Optional[Budget], workers
) -> Tuple[Dict[str, Any], bool]:
    from ..circumvention.leases import run_quorum_lease

    run = run_quorum_lease(
        tuple(params.get("atoms", ())),
        params.get("seed", 0),
        n=params.get("n", 4),
        horizon=params.get("horizon", 48),
        lease_len=params.get("lease_len", 8),
        renew_margin=params.get("renew_margin", 2),
        staleness_bound=params.get("staleness_bound", 8),
        write_every=params.get("write_every", 3),
        read_every=params.get("read_every", 5),
        buggy_no_quorum=params.get("buggy_no_quorum", False),
        budget=budget,
    )
    payload = {
        "trace_fingerprint": run.trace.fingerprint(),
        "leases": encode_canonical(run.leases),
        "commits": run.commits,
    }
    return payload, run.complete


def _handle_benor_run(
    params: Dict[str, Any], budget: Optional[Budget], workers
) -> Tuple[Dict[str, Any], bool]:
    from ..circumvention.randomized import run_ben_or_traced

    inputs = params.get("inputs")
    run = run_ben_or_traced(
        tuple(params.get("atoms", ())),
        params.get("seed", 0),
        n=params.get("n", 4),
        t=params.get("t", 1),
        inputs=None if inputs is None else tuple(inputs),
        biased_coin=params.get("biased_coin", False),
        max_events=params.get("max_events", 4000),
        budget=budget,
    )
    payload = {
        "trace_fingerprint": run.trace.fingerprint(),
        "decisions": encode_canonical(tuple(sorted(run.decisions.items()))),
        "phases": encode_canonical(tuple(sorted(run.phases.items()))),
        "crashed": encode_canonical(run.crashed),
        "events": run.events,
        "agreement": run.agreement,
        "validity": run.validity,
    }
    return payload, run.complete


def _handle_gst_run(
    params: Dict[str, Any], budget: Optional[Budget], workers
) -> Tuple[Dict[str, Any], bool]:
    from ..circumvention.gst import run_gst_consensus

    run = run_gst_consensus(
        tuple(params.get("atoms", ())),
        params.get("seed", 0),
        inputs=tuple(params.get("inputs", (0, 1, 1, 0))),
        t=params.get("t", 1),
        max_rounds=params.get("max_rounds", 64),
        default_gst=params.get("default_gst"),
        budget=budget,
    )
    payload = {
        "trace_fingerprint": run.trace.fingerprint(),
        "decisions": encode_canonical(tuple(sorted(run.decisions.items()))),
        "rounds": run.rounds,
        "gst": run.gst,
        "crashed": encode_canonical(run.crashed),
    }
    return payload, run.complete


_HANDLERS = {
    "flp-analysis": _handle_flp_analysis,
    "valency": _handle_valency,
    "register-search": _handle_register_search,
    "chaos-campaign": _handle_chaos_campaign,
    "detector-run": _handle_detector_run,
    "lease-run": _handle_lease_run,
    "benor-run": _handle_benor_run,
    "gst-run": _handle_gst_run,
}


def _compute_live(args: Tuple) -> Tuple[Dict[str, Any], bool]:
    """Worker-side body of one miss: recompute from the key description.

    Workers receive only the JSON-native key description plus the budget
    policy (both picklable); the key rebuilds exactly (fingerprints are
    content addresses) and the engine runs serially inside the worker —
    the fan-out itself is the parallelism.
    """
    description, budget = args
    key = QueryKey.from_description(description)
    handler = _HANDLERS.get(key.kind)
    if handler is None:
        raise ValueError(
            f"unknown query kind {key.kind!r}; known: {sorted(_HANDLERS)}"
        )
    return handler(key.params_dict(), budget, 1)


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Answer:
    """One resolved query: the payload plus where it came from."""

    key: QueryKey
    result: Any
    source: str  # "store" | "live"
    complete: bool = True


class PendingQuery:
    """A shared handle for one submitted (possibly deduplicated) query."""

    __slots__ = ("key", "_service", "_answer")

    def __init__(self, service: "QueryService", key: QueryKey):
        self.key = key
        self._service = service
        self._answer: Optional[Answer] = None

    @property
    def done(self) -> bool:
        return self._answer is not None

    def result(self) -> Answer:
        """The answer, draining the service's pending batch if needed."""
        if self._answer is None:
            self._service.drain()
        assert self._answer is not None
        return self._answer


class QueryService:
    """Answer queries from the store; fall back to live engines on miss.

    One service wraps one :class:`CertificateStore` plus a resolution
    policy: an optional :class:`~repro.core.budget.Budget` threaded into
    budget-aware engines, and a ``workers`` count used either to fan
    batched misses out across processes or (for a single miss) passed
    into the engine's own sharding.  Counters: ``live`` live
    computations, ``deduped`` submissions coalesced onto an in-flight
    handle; store hits/misses live on ``store.stats``.
    """

    def __init__(
        self,
        store: CertificateStore,
        budget: Optional[Budget] = None,
        workers=1,
    ):
        self.store = store
        self.budget = budget
        self.workers = workers
        self.live = 0
        self.deduped = 0
        self._pending: Dict[str, PendingQuery] = {}

    # -- batch surface ---------------------------------------------------

    def submit(self, key: QueryKey) -> PendingQuery:
        """Enqueue ``key``; identical in-flight requests share one handle."""
        if key.kind not in _HANDLERS:
            raise ValueError(
                f"unknown query kind {key.kind!r}; known: {sorted(_HANDLERS)}"
            )
        fingerprint = key.fingerprint()
        pending = self._pending.get(fingerprint)
        if pending is not None:
            self.deduped += 1
            return pending
        pending = PendingQuery(self, key)
        self._pending[fingerprint] = pending
        return pending

    def drain(self) -> None:
        """Resolve every pending query: store pass, then live fan-out."""
        pending = [p for p in self._pending.values() if not p.done]
        self._pending.clear()
        if not pending:
            return
        misses: List[PendingQuery] = []
        for handle in pending:
            cached = self.store.get(handle.key)
            if cached is not None:
                handle._answer = Answer(handle.key, cached, "store")
            else:
                misses.append(handle)
        if not misses:
            return
        nworkers = resolve_workers(self.workers)
        if nworkers > 1 and len(misses) > 1:
            # Many misses: one engine run per worker, serial inside.
            with WorkerPool(nworkers) as pool:
                outcomes = pool.map(
                    _compute_live,
                    [(h.key.describe(), self.budget) for h in misses],
                    chunksize=1,
                )
        else:
            # Single miss (or serial service): let the engine itself
            # shard across the configured workers.
            outcomes = [
                _HANDLERS[h.key.kind](
                    h.key.params_dict(), self.budget, self.workers
                )
                for h in misses
            ]
        for handle, (payload, complete) in zip(misses, outcomes):
            self.live += 1
            if complete:
                self.store.put(handle.key, payload)
            handle._answer = Answer(handle.key, payload, "live", complete)

    def resolve_many(self, keys: Sequence[QueryKey]) -> List[Answer]:
        """Resolve a batch; answers come back in input order."""
        handles = [self.submit(key) for key in keys]
        self.drain()
        return [handle.result() for handle in handles]

    def resolve(self, key: QueryKey) -> Answer:
        """Resolve one query (store hit or live fallback)."""
        return self.resolve_many([key])[0]

    # -- accounting -------------------------------------------------------

    @property
    def stats(self) -> Dict[str, Any]:
        return {
            "store": self.store.stats,
            "live": self.live,
            "deduped": self.deduped,
        }


# ---------------------------------------------------------------------------
# Payload -> domain-object rebuilders (used by the store-backed
# certificate constructors and the chaos CLI)
# ---------------------------------------------------------------------------


def certificate_from_flp_payload(payload: Dict[str, Any]):
    """An :class:`ImpossibilityCertificate` from a stored FLP payload.

    Both the hit and the miss path of a store-backed
    :func:`~repro.asynchronous.flp.flp_certificate` build their
    certificate through this function, so the two are field-identical.
    """
    from ..impossibility.certificate import ImpossibilityCertificate

    protocol = payload["protocol"]
    n = payload["n"]
    return ImpossibilityCertificate(
        claim=(
            f"{protocol} is not a 1-resilient asynchronous consensus "
            f"protocol for n={n}"
        ),
        scope=(
            "deterministic finite-state protocol; exhaustive valency over "
            "all schedules from all binary inputs"
        ),
        technique="bivalence",
        details={
            "failure_mode": payload["failure_mode"],
            "bivalent_initial_inputs": decode_canonical(
                payload["bivalent_initial_inputs"]
            ),
            "initial_valencies": [
                (
                    list(decode_canonical(inputs)),
                    [decode_canonical(v) for v in valency],
                )
                for inputs, valency in payload["initial_valencies"]
            ],
            "stall_stages": payload["stall_stages"],
            "stall_stayed_bivalent": payload["stall_stayed_bivalent"],
        },
    )


def certificate_from_register_payload(payload: Dict[str, Any]):
    """An :class:`ImpossibilityCertificate` from a register-search payload."""
    from ..core.errors import ModelError
    from ..impossibility.certificate import ImpossibilityCertificate

    solutions = payload["solutions"]
    if solutions:
        raise ModelError(
            f"found {len(solutions)} register consensus programs — "
            "the impossibility claim fails for this class"
        )
    depth = payload["depth"]
    return ImpossibilityCertificate(
        claim=(
            "no symmetric 2-process wait-free consensus protocol exists "
            "over one binary single-writer register per process with at "
            f"most {depth} accesses"
        ),
        scope=(
            f"decision-tree programs, depth <= {depth}, exhaustive over "
            f"{payload['candidates']} candidates"
        ),
        technique="bivalence / exhaustive model checking",
        candidates_checked=payload["candidates"],
        details={
            "agreement_failures": payload["agreement_failures"],
            "validity_failures": payload["validity_failures"],
            "wait_freedom_failures": payload["wait_freedom_failures"],
        },
    )


def run_campaign_cached(
    store: CertificateStore,
    targets=None,
    runs: int = 40,
    master_seed: int = 0,
    shrink: bool = True,
    shrink_checks: int = 256,
    budget: Optional[Budget] = None,
    workers=1,
):
    """A chaos campaign answered from ``store`` when possible.

    Returns ``(report, source)`` with ``source`` ``"store"`` or
    ``"live"``.  The report reconstructed from a store hit is
    field-identical to the one the original campaign returned — same
    verdicts, same counterexamples, same trace fingerprints — so
    downstream artifact writing produces byte-identical files.
    Incomplete (budget-interrupted) campaigns are returned but not
    cached.
    """
    from ..chaos.campaign import report_from_payload

    names = (
        tuple(target.name for target in targets)
        if targets is not None
        else None
    )
    key = campaign_key(names, runs, master_seed, shrink, shrink_checks)
    service = QueryService(store, budget=budget, workers=workers)
    answer = service.resolve(key)
    return report_from_payload(answer.result), answer.source
