"""Canonical request fingerprints: the certificate store's key schema.

Everything the engines produce is a deterministic function of
``(protocol, inputs, adversary, seed)`` — so a *request* for a result is
fully described by a query kind plus its canonicalized parameters, and
the sha256 of that canonical form is a content address for the answer.
This module owns both halves:

* :func:`encode_canonical` / :func:`decode_canonical` — a JSON-safe,
  bijective encoding of the frozen-value vocabulary the engines speak
  (scalars, tuples, frozensets, :class:`~repro.core.freeze.frozendict`).
  It extends the tagged encoding :meth:`Trace.to_jsonl` uses (``{"t":
  ...}`` for tuples, ``{"fs": ...}`` for frozensets) with ``{"fd": ...}``
  for frozendicts, so any interned automaton state or configuration
  round-trips exactly.

* :class:`QueryKey` — ``(kind, params)`` in canonical form with a stable
  :meth:`~QueryKey.fingerprint`, the same sha256-of-canonical-bytes idiom
  as :meth:`repro.core.runtime.Trace.fingerprint`.  Two requests that
  mean the same thing (same kind, same params, any construction order)
  produce the same fingerprint; that fingerprint is the store filename.

* :func:`payload_fingerprint` — sha256 of a canonical JSON payload, used
  to make store entries self-verifying: the entry embeds the digest of
  its own result, and a reader recomputes it before trusting the bytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from ..core.freeze import frozendict, intern_frozen

KEY_SCHEMA = "repro-query-key/v1"


def encode_canonical(value: Any) -> Any:
    """Encode a frozen value into JSON-native, canonically ordered form.

    Scalars pass through; tuples and lists become ``{"t": [...]}``,
    frozensets and sets ``{"fs": [...]}`` (sorted by repr — the same
    canonical order :mod:`repro.core.runtime` uses), frozendicts and
    dicts ``{"fd": [[k, v], ...]}`` sorted by key repr.  Anything else
    is a :class:`TypeError` — an unencodable request parameter should
    fail loudly at key construction, never produce an unstable key.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return {"t": [encode_canonical(v) for v in value]}
    if isinstance(value, (frozenset, set)):
        return {"fs": [encode_canonical(v) for v in sorted(value, key=repr)]}
    if isinstance(value, (frozendict, dict)):
        return {
            "fd": [
                [encode_canonical(k), encode_canonical(value[k])]
                for k in sorted(value, key=repr)
            ]
        }
    raise TypeError(
        f"cannot canonicalize value of type {type(value).__name__}: {value!r}"
    )


def decode_canonical(value: Any) -> Any:
    """Invert :func:`encode_canonical`, producing interned frozen values.

    Tuples, frozensets and frozendicts come back as the canonical
    (hash-consed) instances via :func:`~repro.core.freeze.intern_frozen`,
    so a decoded state table shares identity with live exploration — a
    reloaded graph probes sets exactly as a freshly built one does.
    """
    if isinstance(value, dict):
        if set(value) == {"t"}:
            return intern_frozen(
                tuple(decode_canonical(v) for v in value["t"])
            )
        if set(value) == {"fs"}:
            return intern_frozen(
                frozenset(decode_canonical(v) for v in value["fs"])
            )
        if set(value) == {"fd"}:
            return intern_frozen(
                frozendict(
                    (decode_canonical(k), decode_canonical(v))
                    for k, v in value["fd"]
                )
            )
        raise ValueError(f"unknown tagged value {value!r}")
    if isinstance(value, list):
        raise ValueError(f"bare JSON array in canonical encoding: {value!r}")
    return value


def canonical_json(payload: Any) -> str:
    """Canonical JSON text of a JSON-native payload (sorted keys, tight
    separators) — byte-stable across processes and dict orders."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def payload_fingerprint(payload: Any) -> str:
    """sha256 of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class QueryKey:
    """A canonical request identity: kind + canonically-encoded params.

    Construct through :meth:`make`, which canonicalizes each parameter;
    ``params`` is a sorted tuple of ``(name, canonical_json_text)``
    pairs, so equal requests compare equal and hash equal regardless of
    keyword order or container flavor (list vs tuple, dict vs
    frozendict).
    """

    kind: str
    params: Tuple[Tuple[str, str], ...] = ()
    _fingerprint: str = field(default="", compare=False, repr=False)

    @classmethod
    def make(cls, kind: str, **params: Any) -> "QueryKey":
        encoded = tuple(
            sorted(
                (name, canonical_json(encode_canonical(value)))
                for name, value in params.items()
            )
        )
        return cls(kind=kind, params=encoded)

    def param(self, name: str, default: Any = None) -> Any:
        """Decode one parameter back to its frozen value."""
        for key, text in self.params:
            if key == name:
                return decode_canonical(json.loads(text))
        return default

    def params_dict(self) -> Dict[str, Any]:
        """Every parameter, decoded (frozen values)."""
        return {name: decode_canonical(json.loads(text))
                for name, text in self.params}

    def describe(self) -> Mapping[str, Any]:
        """The JSON-native identity record embedded in store entries."""
        return {
            "schema": KEY_SCHEMA,
            "kind": self.kind,
            "params": [[name, json.loads(text)] for name, text in self.params],
        }

    def fingerprint(self) -> str:
        """Stable sha256 of the canonical identity (memoized)."""
        if not self._fingerprint:
            digest = hashlib.sha256(
                canonical_json(self.describe()).encode("utf-8")
            ).hexdigest()
            object.__setattr__(self, "_fingerprint", digest)
        return self._fingerprint

    @classmethod
    def from_description(cls, description: Mapping[str, Any]) -> "QueryKey":
        """Rebuild a key from :meth:`describe` output (store entries)."""
        if description.get("schema") != KEY_SCHEMA:
            raise ValueError(
                f"unknown key schema {description.get('schema')!r} "
                f"(expected {KEY_SCHEMA!r})"
            )
        return cls(
            kind=description["kind"],
            params=tuple(
                (name, canonical_json(value))
                for name, value in description["params"]
            ),
        )
