"""Impossibility-as-a-service: certificate store + query layer (§3.2).

The survey's closing argument is that impossibility results should be
*reusable artifacts*, not one-off computations.  This package makes the
repository's mechanized results exactly that: every engine answer is a
pure function of its canonicalized request, so it can be stored under a
content address (:mod:`repro.service.keys`), verified on the way back
out (:mod:`repro.service.store`), and served to later processes without
re-running the search (:mod:`repro.service.service`) — including whole
warm state graphs (:mod:`repro.service.graphs`).

    store = CertificateStore("certs/")
    service = QueryService(store)
    service.resolve(flp_key("quorum-vote", n=3))   # live, then cached
    service.resolve(flp_key("quorum-vote", n=3))   # store hit, no search

``python -m repro.service`` is the CLI face of the same queries.
"""

from .graphs import (
    graph_blob_key,
    pack_state_graph,
    persist_state_graph,
    unpack_state_graph,
    warm_state_graph,
)
from .keys import (
    KEY_SCHEMA,
    QueryKey,
    canonical_json,
    decode_canonical,
    encode_canonical,
    payload_fingerprint,
)
from .service import (
    QUERY_KINDS,
    Answer,
    PendingQuery,
    QueryService,
    benor_run_key,
    campaign_key,
    certificate_from_flp_payload,
    certificate_from_register_payload,
    detector_run_key,
    flp_key,
    flp_report_payload,
    gst_run_key,
    lease_run_key,
    register_outcome_payload,
    register_search_key,
    run_campaign_cached,
    valency_key,
)
from .store import ENTRY_SCHEMA, CertificateStore

__all__ = [
    "Answer",
    "CertificateStore",
    "ENTRY_SCHEMA",
    "KEY_SCHEMA",
    "PendingQuery",
    "QUERY_KINDS",
    "QueryKey",
    "QueryService",
    "benor_run_key",
    "campaign_key",
    "canonical_json",
    "certificate_from_flp_payload",
    "certificate_from_register_payload",
    "decode_canonical",
    "detector_run_key",
    "encode_canonical",
    "flp_key",
    "flp_report_payload",
    "graph_blob_key",
    "gst_run_key",
    "lease_run_key",
    "pack_state_graph",
    "payload_fingerprint",
    "persist_state_graph",
    "register_outcome_payload",
    "register_search_key",
    "run_campaign_cached",
    "unpack_state_graph",
    "valency_key",
    "warm_state_graph",
]
