"""The content-addressed, disk-persistent certificate store.

Every entry is keyed by a canonical request fingerprint
(:class:`~repro.service.keys.QueryKey`) and stored as a self-describing
JSON blob that embeds both its own key description and the sha256 of its
result payload.  The contract on read is *verify or miss*:

* a file that does not parse, carries the wrong schema, describes a
  different key than its filename claims, or whose result digest does
  not match the recomputed one is treated as a **miss** (and counted in
  ``corrupt``) — a damaged store can cost recomputation, never a wrong
  answer;
* writes go through the atomic writers in :mod:`repro.core.artifacts`
  (stage + fsync + ``os.replace``), so concurrent writers of the same
  key converge on one complete entry and a killed writer leaves either
  the old complete entry or none.

Two object classes share the directory:

* ``objects/<fp[:2]>/<fp>.json`` — query results (JSON payloads);
* ``graphs/<fp[:2]>/<fp>.bin`` — packed state-graph blobs (binary,
  written with :func:`~repro.core.artifacts.atomic_write_bytes`), with
  their integrity header handled by :mod:`repro.service.graphs`.

Layout and discipline follow the content-addressing idea of iroh-blobs:
the name *is* the hash, so a reader never needs to trust the writer —
only the digest check.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterator, Optional, Tuple

from ..core.artifacts import atomic_write_bytes, atomic_write_text
from ..core.runtime import FingerprintMismatch
from .keys import QueryKey, canonical_json, payload_fingerprint

ENTRY_SCHEMA = "repro-store-entry/v1"
BLOB_MAGIC = b"repro-store-blob/v1\n"


class CertificateStore:
    """Disk-persistent map from request fingerprints to verified results.

    ``get``/``put`` move JSON payloads; ``get_blob``/``put_blob`` move
    binary blobs (packed graphs).  All verification failures degrade to
    misses; counters (``hits``, ``misses``, ``corrupt``, ``puts``) make
    hit rates and store health observable — "the warm run was all hits"
    is an assertable proposition, which is what the store-smoke CI job
    and the acceptance tests check.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.puts = 0

    # -- paths -------------------------------------------------------------

    def _object_path(self, fingerprint: str) -> str:
        return os.path.join(
            self.root, "objects", fingerprint[:2], fingerprint + ".json"
        )

    def _blob_path(self, fingerprint: str) -> str:
        return os.path.join(
            self.root, "graphs", fingerprint[:2], fingerprint + ".bin"
        )

    # -- JSON entries --------------------------------------------------------

    def get(self, key: QueryKey) -> Optional[Any]:
        """The verified result for ``key``, or None (miss).

        Verification re-derives every identity in the entry: the schema,
        the key description against the requested key's fingerprint, and
        the result payload against its embedded sha256.  Any failure is
        a miss — recorded in ``corrupt`` when a file was present but
        unusable — so a truncated, hand-edited or stale entry falls back
        to live search instead of serving a wrong answer.
        """
        fingerprint = key.fingerprint()
        path = self._object_path(fingerprint)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            result = self._verify_entry(entry, key)
        except (FingerprintMismatch, KeyError, TypeError, ValueError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _verify_entry(self, entry: Any, key: QueryKey) -> Any:
        if not isinstance(entry, dict) or entry.get("schema") != ENTRY_SCHEMA:
            raise ValueError(f"unknown store entry schema in {entry!r}")
        described = QueryKey.from_description(entry["key"])
        if described.fingerprint() != key.fingerprint():
            raise FingerprintMismatch(
                key.fingerprint(),
                described.fingerprint(),
                context=f"store entry key for kind {key.kind!r}",
            )
        recorded = entry.get("result_fingerprint")
        result = entry["result"]
        actual = payload_fingerprint(result)
        if recorded != actual:
            raise FingerprintMismatch(
                recorded,
                actual,
                context=f"store entry result for kind {key.kind!r}",
            )
        return result

    def put(self, key: QueryKey, result: Any) -> str:
        """Persist ``result`` (JSON-native) under ``key``; return the path.

        The entry is serialized before any file is touched and promoted
        atomically, so racing writers of the same key each install a
        complete entry and the survivor is whichever replace landed last
        — with deterministic engines both bodies are byte-identical
        anyway.
        """
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": key.describe(),
            "key_fingerprint": key.fingerprint(),
            "result": result,
            "result_fingerprint": payload_fingerprint(result),
        }
        path = self._object_path(key.fingerprint())
        atomic_write_text(path, canonical_json(entry) + "\n")
        self.puts += 1
        return path

    def contains(self, key: QueryKey) -> bool:
        """Is an entry file present for ``key``?  (No verification, no
        counter traffic — presence only; ``get`` still decides trust.)"""
        return os.path.exists(self._object_path(key.fingerprint()))

    def load_object(self, fingerprint: str) -> Optional[Tuple[QueryKey, Any]]:
        """Load the entry *named* ``fingerprint``, reconstructing its key.

        The enumeration-side read: :meth:`get` answers "what is the
        result for this request?", this answers "what request and result
        does this stored file hold?" — which is how a schedule corpus
        walks :meth:`entries` and replays everything it finds.  The same
        verify-or-miss discipline applies, with the extra check that the
        embedded key's fingerprint matches the filename (a renamed file
        is corrupt, not a different entry).
        """
        path = self._object_path(fingerprint)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            if not isinstance(entry, dict) or entry.get("schema") != ENTRY_SCHEMA:
                raise ValueError(f"unknown store entry schema in {entry!r}")
            key = QueryKey.from_description(entry["key"])
            if key.fingerprint() != fingerprint:
                raise FingerprintMismatch(
                    fingerprint,
                    key.fingerprint(),
                    context="store entry filename",
                )
            result = self._verify_entry(entry, key)
        except (FingerprintMismatch, KeyError, TypeError, ValueError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return key, result

    # -- binary blobs --------------------------------------------------------

    def get_blob(self, key: QueryKey) -> Optional[bytes]:
        """The verified blob body for ``key``, or None (miss).

        Blob files are ``BLOB_MAGIC`` + one JSON header line (key
        fingerprint, body sha256, body length) + raw body bytes; every
        field is re-verified before the body is returned.
        """
        path = self._blob_path(key.fingerprint())
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            body = self._verify_blob(raw, key)
        except (FingerprintMismatch, KeyError, TypeError, ValueError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return body

    def _verify_blob(self, raw: bytes, key: QueryKey) -> bytes:
        if not raw.startswith(BLOB_MAGIC):
            raise ValueError("bad blob magic")
        newline = raw.index(b"\n", len(BLOB_MAGIC))
        header = json.loads(raw[len(BLOB_MAGIC):newline].decode("utf-8"))
        body = raw[newline + 1:]
        if header.get("key_fingerprint") != key.fingerprint():
            raise FingerprintMismatch(
                key.fingerprint(),
                header.get("key_fingerprint"),
                context=f"store blob key for kind {key.kind!r}",
            )
        if header.get("length") != len(body):
            raise ValueError(
                f"blob length {len(body)} != recorded {header.get('length')}"
            )
        digest = hashlib.sha256(body).hexdigest()
        if header.get("body_sha256") != digest:
            raise FingerprintMismatch(
                header.get("body_sha256"),
                digest,
                context=f"store blob body for kind {key.kind!r}",
            )
        return body

    def put_blob(self, key: QueryKey, body: bytes) -> str:
        """Persist a binary blob under ``key``; return the path."""
        header = {
            "key_fingerprint": key.fingerprint(),
            "kind": key.kind,
            "body_sha256": hashlib.sha256(body).hexdigest(),
            "length": len(body),
        }
        raw = BLOB_MAGIC + canonical_json(header).encode("utf-8") + b"\n" + body
        path = self._blob_path(key.fingerprint())
        atomic_write_bytes(path, raw)
        self.puts += 1
        return path

    # -- accounting ----------------------------------------------------------

    def entries(self) -> Iterator[Tuple[str, str]]:
        """Yield ``(class, fingerprint)`` for every stored object."""
        for kind, subdir, suffix in (
            ("object", "objects", ".json"),
            ("graph", "graphs", ".bin"),
        ):
            base = os.path.join(self.root, subdir)
            if not os.path.isdir(base):
                continue
            for bucket in sorted(os.listdir(base)):
                bucket_dir = os.path.join(base, bucket)
                if not os.path.isdir(bucket_dir):
                    continue
                for name in sorted(os.listdir(bucket_dir)):
                    if name.endswith(suffix):
                        yield kind, name[: -len(suffix)]

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "puts": self.puts,
        }

    def stats_line(self) -> str:
        """One human-readable accounting line for CLIs and CI logs."""
        s = self.stats
        return (
            f"store {self.root}: hits={s['hits']} misses={s['misses']} "
            f"corrupt={s['corrupt']} puts={s['puts']}"
        )
