"""Command-line entry point: ``python -m repro.service``.

Answers one query against a certificate store directory, running the
live engine only on a miss, and prints the answer plus the store's
hit/miss accounting — so "the second run was all hits" is visible from
the shell:

    python -m repro.service --store certs flp --protocol quorum-vote --n 3
    python -m repro.service --store certs valency --protocol quorum-vote \\
        --n 3 --inputs 0,1,1
    python -m repro.service --store certs register-search --depth 2
    python -m repro.service --store certs campaign --runs 10 --seed 0
    python -m repro.service --store certs detector-run \\
        --atoms '[["split", 2, 3]]' --seed 0
    python -m repro.service --store certs lease-run \\
        --atoms '[["cut", 0, 0, 1]]' --buggy
    python -m repro.service --store certs stats
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..core.budget import Budget
from .keys import QueryKey
from .service import (
    QueryService,
    campaign_key,
    detector_run_key,
    flp_key,
    lease_run_key,
    register_search_key,
    valency_key,
)
from .store import CertificateStore


def _parse_atoms(text: str):
    """A JSON schedule (list of [tag, ...] atoms) into canonical tuples."""
    atoms = json.loads(text)
    return tuple(tuple(atom) if isinstance(atom, list) else atom
                 for atom in atoms)


def _key_from_args(args) -> Optional[QueryKey]:
    if args.command == "flp":
        return flp_key(args.protocol, n=args.n, stall_stages=args.stall_stages)
    if args.command == "valency":
        inputs = tuple(int(v) for v in args.inputs.split(","))
        return valency_key(args.protocol, n=args.n, inputs=inputs)
    if args.command == "register-search":
        return register_search_key(depth=args.depth)
    if args.command == "campaign":
        targets = tuple(args.targets) if args.targets else None
        return campaign_key(
            targets,
            runs=args.runs,
            master_seed=args.seed,
            shrink=not args.no_shrink,
        )
    if args.command == "detector-run":
        return detector_run_key(
            atoms=_parse_atoms(args.atoms),
            seed=args.seed,
            n=args.n,
            horizon=args.horizon,
            adaptive=not args.no_adaptive,
            initial_timeout=args.initial_timeout,
        )
    if args.command == "lease-run":
        return lease_run_key(
            atoms=_parse_atoms(args.atoms),
            seed=args.seed,
            n=args.n,
            horizon=args.horizon,
            buggy_no_quorum=args.buggy,
        )
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Query the certificate store; run the live engine "
        "only on a miss.",
    )
    parser.add_argument(
        "--store", required=True, metavar="DIR",
        help="certificate store directory (created on first write)",
    )
    parser.add_argument(
        "--workers", default=1, metavar="N",
        help="worker processes for live fallbacks ('auto' = one per CPU)",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None,
        help="budget for live fallbacks; incomplete answers are not cached",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    flp = sub.add_parser("flp", help="full FLP analysis of one candidate")
    flp.add_argument("--protocol", required=True)
    flp.add_argument("--n", type=int, default=2)
    flp.add_argument("--stall-stages", type=int, default=24)

    valency = sub.add_parser(
        "valency", help="valency of one initial configuration"
    )
    valency.add_argument("--protocol", required=True)
    valency.add_argument("--n", type=int, default=2)
    valency.add_argument(
        "--inputs", required=True, metavar="V,V,...",
        help="comma-separated input vector, e.g. 0,1,1",
    )

    register = sub.add_parser(
        "register-search", help="exhaustive register-consensus census"
    )
    register.add_argument("--depth", type=int, default=2)

    campaign = sub.add_parser("campaign", help="seeded chaos campaign")
    campaign.add_argument("--runs", type=int, default=40)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument(
        "--targets", nargs="*", default=None, metavar="NAME"
    )
    campaign.add_argument("--no-shrink", action="store_true")

    detector = sub.add_parser(
        "detector-run",
        help="one heartbeat failure-detector run (circumvention layer)",
    )
    detector.add_argument(
        "--atoms", default="[]", metavar="JSON",
        help='partition schedule, e.g. \'[["split", 2, 3]]\'',
    )
    detector.add_argument("--seed", type=int, default=0)
    detector.add_argument("--n", type=int, default=4)
    detector.add_argument("--horizon", type=int, default=40)
    detector.add_argument("--initial-timeout", type=int, default=4)
    detector.add_argument("--no-adaptive", action="store_true")

    lease = sub.add_parser(
        "lease-run", help="one quorum-lease run under a partition schedule"
    )
    lease.add_argument(
        "--atoms", default="[]", metavar="JSON",
        help='partition schedule, e.g. \'[["cut", 0, 0, 1]]\'',
    )
    lease.add_argument("--seed", type=int, default=0)
    lease.add_argument("--n", type=int, default=4)
    lease.add_argument("--horizon", type=int, default=48)
    lease.add_argument(
        "--buggy", action="store_true",
        help="grant leases without a quorum (the planted bug)",
    )

    sub.add_parser("stats", help="list the store's contents and exit")

    args = parser.parse_args(argv)
    store = CertificateStore(args.store)

    if args.command == "stats":
        count = 0
        for kind, fingerprint in store.entries():
            print(f"{kind}  {fingerprint}")
            count += 1
        print(f"{count} entries in {store.root}")
        return 0

    budget = (
        Budget(max_seconds=args.max_seconds)
        if args.max_seconds is not None
        else None
    )
    workers = args.workers if args.workers == "auto" else int(args.workers)
    service = QueryService(store, budget=budget, workers=workers)
    key = _key_from_args(args)
    assert key is not None
    answer = service.resolve(key)

    print(json.dumps(answer.result, indent=2, sort_keys=True))
    print(
        f"answered from {answer.source} "
        f"(complete={answer.complete}, key={key.fingerprint()[:16]})",
        file=sys.stderr,
    )
    print(store.stats_line(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
