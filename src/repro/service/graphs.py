"""Cross-run persistence for warm :class:`~repro.core.stategraph.StateGraph`\\ s.

The packed state engine (PR 5) holds a graph as three flat pieces: the
dense id -> frozen-state table of the interner and two CSR row stores
(locally-controlled and input-action edges), each a trio of ``array('q')``
columns plus an aligned label list.  That representation is already
serialization-shaped — this module is the codec:

* :func:`pack_state_graph` — one JSON header line (schema, byte order,
  canonically-encoded states and labels, column lengths) followed by the
  raw bytes of the six ``array('q')`` columns, concatenated in header
  order.  The numeric payload ships as memory, not JSON: a 60k-edge
  graph is six ``tobytes()`` calls, not 60k number tokens.

* :func:`unpack_state_graph` — the inverse, rebuilt through
  ``StateInterner.bulk_load`` + ``PackedGraph.import_rows`` so every
  structural invariant (alignment, offset bounds, id range) is
  re-checked on the way in.  States and labels come back through
  :func:`~repro.service.keys.decode_canonical`, i.e. interned — the
  reloaded graph probes and expands exactly like the one that was saved,
  and since the rows are already present, *every* subsequent expansion
  is a cache hit (``graph.stats["misses"] == 0`` is the zero-live-search
  receipt).

Store round-trip helpers (:func:`persist_state_graph` /
:func:`warm_state_graph`) wrap the codec around
:class:`~repro.service.store.CertificateStore` blobs, whose header
carries the body sha256 — a truncated or bit-flipped blob is a verified
miss before this module ever parses it.
"""

from __future__ import annotations

import json
import sys
from array import array
from typing import Any, Dict, Optional, Tuple

from ..core.automaton import IOAutomaton
from ..core.stategraph import StateGraph, state_graph
from .keys import QueryKey, canonical_json, decode_canonical, encode_canonical
from .store import CertificateStore

PACK_SCHEMA = "repro-graph-pack/v1"

# The six numeric columns, in body order.  Each entry names the store
# ("local"/"input") and the column within it.
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("local", "succ"),
    ("local", "start"),
    ("local", "end"),
    ("input", "succ"),
    ("input", "start"),
    ("input", "end"),
)


def _encode_store(rows: Dict[str, Any]) -> Dict[str, Any]:
    """The JSON-header half of one packed store: labels + shape."""
    return {
        "labels": [encode_canonical(label) for label in rows["labels"]],
        "rows": rows["rows"],
        "lengths": {
            "succ": len(rows["succ"]),
            "start": len(rows["start"]),
            "end": len(rows["end"]),
        },
    }


def pack_state_graph(graph: StateGraph) -> bytes:
    """Serialize ``graph``'s interner and CSR stores into one blob."""
    payload = graph.export_packed()
    header = {
        "schema": PACK_SCHEMA,
        "byteorder": sys.byteorder,
        "itemsize": array("q").itemsize,
        "states": [encode_canonical(state) for state in payload["states"]],
        "local": _encode_store(payload["local"]),
        "input": _encode_store(payload["input"]),
    }
    parts = [canonical_json(header).encode("utf-8"), b"\n"]
    for store_name, column in _COLUMNS:
        parts.append(payload[store_name][column].tobytes())
    return b"".join(parts)


def unpack_state_graph(graph: StateGraph, blob: bytes) -> StateGraph:
    """Restore a :func:`pack_state_graph` blob into a fresh ``graph``.

    ``graph`` must be empty (nothing interned, no rows) — the import
    adopts the saved id space wholesale.  Raises ``ValueError`` on any
    structural defect; callers that reached this point through the store
    have already survived the sha256 check, so an error here means a
    format bug, not disk corruption.
    """
    newline = blob.index(b"\n")
    header = json.loads(blob[:newline].decode("utf-8"))
    if header.get("schema") != PACK_SCHEMA:
        raise ValueError(f"unknown graph pack schema {header.get('schema')!r}")
    itemsize = array("q").itemsize
    if header.get("itemsize") != itemsize:
        raise ValueError(
            f"pack itemsize {header.get('itemsize')} != native {itemsize}"
        )
    swap = header.get("byteorder") != sys.byteorder

    offset = newline + 1
    columns: Dict[Tuple[str, str], array] = {}
    for store_name, column in _COLUMNS:
        length = header[store_name]["lengths"][column]
        nbytes = length * itemsize
        chunk = blob[offset:offset + nbytes]
        if len(chunk) != nbytes:
            raise ValueError(
                f"truncated blob: {store_name}/{column} needs {nbytes} bytes, "
                f"{len(chunk)} left"
            )
        col = array("q")
        col.frombytes(chunk)
        if swap:
            col.byteswap()
        columns[(store_name, column)] = col
        offset += nbytes
    if offset != len(blob):
        raise ValueError(f"{len(blob) - offset} trailing bytes after columns")

    states = [decode_canonical(s) for s in header["states"]]
    graph.import_packed(
        states,
        local={
            "succ": columns[("local", "succ")],
            "start": columns[("local", "start")],
            "end": columns[("local", "end")],
            "labels": [decode_canonical(v) for v in header["local"]["labels"]],
            "rows": header["local"]["rows"],
        },
        input_rows={
            "succ": columns[("input", "succ")],
            "start": columns[("input", "start")],
            "end": columns[("input", "end")],
            "labels": [decode_canonical(v) for v in header["input"]["labels"]],
            "rows": header["input"]["rows"],
        },
    )
    return graph


# -- store round-trips ------------------------------------------------------


def graph_blob_key(automaton_name: str, **params: Any) -> QueryKey:
    """The store key for a persisted graph of ``automaton_name``."""
    return QueryKey.make("state-graph", automaton=automaton_name, **params)


def persist_state_graph(
    store: CertificateStore, key: QueryKey, graph: StateGraph
) -> str:
    """Pack ``graph`` and write it as a verified store blob."""
    return store.put_blob(key, pack_state_graph(graph))


def warm_state_graph(
    store: CertificateStore, key: QueryKey, automaton: IOAutomaton
) -> Tuple[StateGraph, bool]:
    """The shared graph for ``automaton``, warmed from ``store`` if possible.

    Returns ``(graph, warmed)``.  The blob is only imported into a graph
    that has done no work yet (importing must not clobber live rows); a
    graph that is already warm — from this process's own exploration or
    an earlier import — is returned as-is with ``warmed=False``.  A
    corrupt or absent blob is a store miss and the cold graph is
    returned; exploration then proceeds live, exactly as without a
    store.
    """
    graph = state_graph(automaton)
    if len(graph.interner):
        return graph, False
    body = store.get_blob(key)
    if body is None:
        return graph, False
    try:
        unpack_state_graph(graph, body)
    except (KeyError, TypeError, ValueError):
        # Format-level defect the sha256 could not see (e.g. a blob
        # written by a newer pack schema): treat as corrupt, stay cold.
        store.corrupt += 1
        graph.reset_packed_state()
        return graph, False
    return graph, True
