"""Knowledge and common knowledge over runs (survey §2.6)."""

from .analysis import (
    common_knowledge_certificate,
    delivery_knowledge_profile,
    simultaneous_broadcast_system,
    two_generals_point_system,
)
from .kripke import Agent, Fact, Point, PointSystem

__all__ = [
    "PointSystem",
    "Point",
    "Agent",
    "Fact",
    "two_generals_point_system",
    "delivery_knowledge_profile",
    "common_knowledge_certificate",
    "simultaneous_broadcast_system",
]
