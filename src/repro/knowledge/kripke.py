"""Knowledge in distributed systems: Kripke structures over runs (§2.6).

Halpern–Moses [64], Chandy–Misra [29] and the Dwork–Moses program recast
indistinguishability as *knowledge*: an agent knows a fact at a point if
the fact holds at every point the agent cannot distinguish from it.
"Everyone knows" iterates over agents; *common knowledge* is the fixpoint
— truth at every point reachable through any agent's indistinguishability,
to any depth.

The model here is finite and concrete: a :class:`PointSystem` is a set of
points (global states / cut of a run), a view function per agent, and
facts as predicates.  The operators are computed exactly, which is all
the survey's knowledge-flavoured results need on bounded instances.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Sequence,
    Set,
)

from ..core.errors import ModelError

Point = Hashable
Agent = Hashable
Fact = Callable[[Point], bool]


class PointSystem:
    """A finite Kripke structure built from agents' views of points."""

    def __init__(
        self,
        points: Iterable[Point],
        agents: Sequence[Agent],
        view: Callable[[Agent, Point], Hashable],
    ):
        self.points: List[Point] = list(points)
        if not self.points:
            raise ModelError("a point system needs at least one point")
        self.agents = list(agents)
        self._view = view
        # Partition points by each agent's view.
        self._cells: Dict[Agent, Dict[Hashable, List[Point]]] = {}
        for agent in self.agents:
            cells: Dict[Hashable, List[Point]] = {}
            for point in self.points:
                cells.setdefault(view(agent, point), []).append(point)
            self._cells[agent] = cells

    def indistinguishable(self, agent: Agent, point: Point) -> List[Point]:
        """All points the agent considers possible at ``point``."""
        return self._cells[agent][self._view(agent, point)]

    # -- operators -----------------------------------------------------------

    def holds(self, fact: Fact, point: Point) -> bool:
        return bool(fact(point))

    def knows(self, agent: Agent, fact: Fact, point: Point) -> bool:
        """K_agent(fact) at ``point``."""
        return all(fact(p) for p in self.indistinguishable(agent, point))

    def everyone_knows(self, fact: Fact, point: Point) -> bool:
        """E(fact): every agent knows it."""
        return all(self.knows(agent, fact, point) for agent in self.agents)

    def nested_knowledge(self, fact: Fact, point: Point, depth: int) -> bool:
        """E^depth(fact): everyone knows that everyone knows that ..."""
        current = fact
        for _ in range(depth):
            previous = current

            def lifted(p, prev=previous):
                return self.everyone_knows(prev, p)

            current = lifted
        return current(point)

    def reachable_points(self, point: Point) -> Set[Point]:
        """The points reachable through any agent's indistinguishability —
        the connected component that common knowledge quantifies over."""
        seen: Set[Point] = {point}
        queue: deque = deque([point])
        while queue:
            current = queue.popleft()
            for agent in self.agents:
                for other in self.indistinguishable(agent, current):
                    if other not in seen:
                        seen.add(other)
                        queue.append(other)
        return seen

    def common_knowledge(self, fact: Fact, point: Point) -> bool:
        """C(fact): the fact holds throughout the reachable component."""
        return all(fact(p) for p in self.reachable_points(point))

    def knowledge_depth(self, fact: Fact, point: Point, max_depth: int = 50
                        ) -> int:
        """The largest k <= max_depth with E^k(fact) at ``point``.

        Quantifies "how close to common knowledge" the system got — the
        Two Generals analysis shows this stuck at the number of deliveries.
        """
        depth = 0
        while depth < max_depth and self.nested_knowledge(fact, point, depth + 1):
            depth += 1
        return depth
