"""Knowledge-theoretic analyses: common knowledge and coordination (§2.6).

Halpern–Moses' knowledge-flavoured rendering of the Two Generals result:
over an unreliable channel, *common knowledge cannot be gained*.  We build
the Kripke structure whose points are the delivery-chain executions of a
concrete protocol and compute the operators exactly:

* after k deliveries, E^k("the order was sent") holds but E^(k+1) does
  not — each delivery buys exactly one level of nesting;
* the indistinguishability component of every point reaches the empty
  execution, where the fact fails — so C(fact) is false everywhere:
  common knowledge is never attained, at any finite message count.

For contrast, :func:`simultaneous_broadcast_system` models a synchronous
reliable broadcast, where one round *does* create common knowledge — the
difference the survey attributes to synchrony.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Tuple

from ..asynchronous.two_generals import (
    ATTACK,
    HandshakeProtocol,
    TwoGeneralsProtocol,
    run_with_losses,
)
from ..impossibility.certificate import ImpossibilityCertificate
from .kripke import PointSystem


def two_generals_point_system(
    protocol: TwoGeneralsProtocol = None,
) -> PointSystem:
    """Points = delivery counts of the chain; views = the generals'
    message histories in the corresponding run."""
    protocol = protocol or HandshakeProtocol(rounds=6, confirmations=3)
    runs = {
        k: run_with_losses(protocol, ATTACK, k)
        for k in range(protocol.slots + 1)
    }

    def view(agent: int, point: int) -> Hashable:
        return runs[point].histories[agent]

    return PointSystem(points=list(runs), agents=[0, 1], view=view)


def delivery_knowledge_profile(
    protocol: TwoGeneralsProtocol = None,
) -> Dict[int, Dict[str, object]]:
    """For each delivery count k: who knows what, to what nesting depth.

    The fact analysed is "at least one message was delivered" (equivalently
    here: general 1 has heard the attack order), which is false only at
    the empty point k = 0.
    """
    protocol = protocol or HandshakeProtocol(rounds=6, confirmations=3)
    system = two_generals_point_system(protocol)
    fact = lambda k: k >= 1  # noqa: E731 — the delivered fact

    profile: Dict[int, Dict[str, object]] = {}
    for k in system.points:
        profile[k] = {
            "holds": system.holds(fact, k),
            "g0_knows": system.knows(0, fact, k),
            "g1_knows": system.knows(1, fact, k),
            "everyone": system.everyone_knows(fact, k),
            "depth": system.knowledge_depth(fact, k, max_depth=20),
            "common": system.common_knowledge(fact, k),
        }
    return profile


def common_knowledge_certificate(
    protocol: TwoGeneralsProtocol = None,
) -> ImpossibilityCertificate:
    """Certify: common knowledge of delivery is never attained.

    Every point's indistinguishability component contains the k = 0 point
    (where nothing was delivered), and knowledge depth at point k is
    exactly k — one nesting level per successful delivery, never infinity.
    """
    protocol = protocol or HandshakeProtocol(rounds=6, confirmations=3)
    profile = delivery_knowledge_profile(protocol)
    max_k = max(profile)
    if any(entry["common"] for entry in profile.values()):
        raise AssertionError(
            "common knowledge attained over a lossy channel — engine bug"
        )
    depths = {k: entry["depth"] for k, entry in profile.items()}
    return ImpossibilityCertificate(
        claim=(
            "common knowledge of message delivery cannot be gained over an "
            "unreliable channel: k deliveries buy exactly k-1 levels of "
            "nested knowledge, never C"
        ),
        scope=(
            f"{protocol.name}, delivery chain of {max_k + 1} points, "
            "operators computed exactly"
        ),
        technique="knowledge (indistinguishability fixpoint)",
        details={"knowledge_depths": depths},
    )


def simultaneous_broadcast_system(n: int = 3) -> Tuple[PointSystem, Callable]:
    """The synchronous contrast: a reliable simultaneous broadcast.

    Points: "sent" and "idle" worlds.  After the broadcast round every
    agent's view separates the two worlds completely, so the fact "the
    value was broadcast" is common knowledge at the sent point.
    """
    points = ["sent", "idle"]
    agents = list(range(n))

    def view(agent: int, point: str) -> Hashable:
        # Reliable synchronous broadcast: everyone observed the round.
        return point

    fact = lambda p: p == "sent"  # noqa: E731
    return PointSystem(points, agents, view), fact
