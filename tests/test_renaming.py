"""Tests for wait-free renaming on the snapshot substrate (§2.2.4, [10])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ModelError
from repro.registers import run_renaming, renaming_series


class TestRenaming:
    @pytest.mark.parametrize("seed", range(12))
    def test_names_distinct(self, seed):
        outcome = run_renaming([101, 57, 883], seed=seed)
        assert outcome.names_distinct

    @pytest.mark.parametrize("seed", range(12))
    def test_names_within_wait_free_bound(self, seed):
        """Decided names fit in 1 .. 2n - 1 — the n + t bound at t = n-1."""
        outcome = run_renaming([101, 57, 883], seed=seed)
        assert outcome.within_bound()

    def test_four_processes(self):
        for seed in range(8):
            outcome = run_renaming([40, 10, 30, 20], seed=seed)
            assert outcome.names_distinct
            assert outcome.max_name <= 2 * 4 - 1

    def test_wait_free_with_partial_participation(self):
        """Crashed-from-the-start processes never block the others."""
        outcome = run_renaming([5, 9, 2, 7], seed=3, active=[0, 2])
        assert set(outcome.new_names) == {5, 2}
        assert outcome.names_distinct

    def test_solo_run_takes_first_name(self):
        outcome = run_renaming([42, 77], seed=0, active=[0])
        assert outcome.new_names == {42: 1}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ModelError):
            run_renaming([1, 1, 2])

    def test_series_helper(self):
        outcomes = renaming_series([3, 1, 2], seeds=range(5))
        assert all(o.names_distinct for o in outcomes)

    @settings(max_examples=25, deadline=None)
    @given(st.permutations([11, 22, 33, 44]), st.integers(0, 50))
    def test_property_distinct_and_bounded(self, ids, seed):
        outcome = run_renaming(list(ids), seed=seed)
        assert outcome.names_distinct
        assert outcome.within_bound()

    def test_name_depends_on_schedule_not_only_ids(self):
        """The new name space is genuinely contended: different schedules
        can hand the same process different names."""
        names = {
            run_renaming([101, 57, 883], seed=s).new_names[883]
            for s in range(10)
        }
        assert len(names) > 1
