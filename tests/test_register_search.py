"""Tests for the exhaustive read/write consensus search (E11's searched-
class strengthening)."""


from repro.registers import (
    ObjectConsensusSystem,
    ProgramConsensus,
    count_programs,
    enumerate_programs,
    register_consensus_certificate,
    search_register_consensus,
    wait_free_verdict,
)


class TestEnumeration:
    def test_counts(self):
        assert count_programs(0) == 4
        assert count_programs(1) == 32
        assert count_programs(2) == 1124

    def test_enumeration_matches_count(self):
        assert len(list(enumerate_programs(1))) == 32
        assert len(list(enumerate_programs(2))) == 1124

    def test_programs_are_well_formed(self):
        for program in enumerate_programs(1):
            assert program[0] in ("decide", "write", "read")


class TestProgramSemantics:
    def test_natural_candidate_runs(self):
        """write own; read theirs; decide seen — the canonical attempt."""
        program = ("write", "own", ("read",
                                    ("decide", "seen"),
                                    ("decide", "seen")))
        verdict = wait_free_verdict(
            ObjectConsensusSystem(ProgramConsensus(program), 2)
        )
        assert not verdict.solves_consensus  # of course

    def test_constant_program_fails_validity(self):
        program = ("decide", "zero")
        verdict = wait_free_verdict(
            ObjectConsensusSystem(ProgramConsensus(program), 2)
        )
        assert verdict.failure_kind == "validity"

    def test_own_program_fails_agreement(self):
        program = ("decide", "own")
        verdict = wait_free_verdict(
            ObjectConsensusSystem(ProgramConsensus(program), 2)
        )
        assert verdict.failure_kind == "agreement"


class TestSearch:
    def test_depth_one_no_solutions(self):
        outcome = search_register_consensus(depth=1)
        assert outcome.candidates == 32
        assert outcome.solutions == []

    def test_depth_two_certificate(self):
        cert = register_consensus_certificate(depth=2)
        assert cert.candidates_checked == 1124
        assert cert.details["agreement_failures"] > 0
        assert cert.details["validity_failures"] > 0
        # Every program is a finite tree: wait-freedom never fails.
        assert cert.details["wait_freedom_failures"] == 0
