"""The query service: store hits, live fallbacks, dedup, and identity.

The acceptance-grade properties live here: a warm store answers with
zero live computation and counters to prove it; a corrupted entry falls
back to live search *and lands on the same final answer*; store-backed
certificate constructors are field-identical across the live, hit, and
store-free paths; a campaign reconstructed from a store hit writes
byte-identical counterexample artifacts; budget-interrupted results are
returned but never cached.
"""

import os

import pytest

from repro.asynchronous.flp import QuorumVote, WaitForAll, flp_certificate
from repro.chaos.campaign import report_to_payload, write_artifacts
from repro.chaos.targets import target_registry
from repro.core.budget import Budget
from repro.registers.exhaustive import register_consensus_certificate
from repro.service import (
    CertificateStore,
    QueryKey,
    QueryService,
    flp_key,
    register_search_key,
    run_campaign_cached,
    valency_key,
)


@pytest.fixture
def store(tmp_path):
    return CertificateStore(str(tmp_path / "certs"))


class TestResolution:
    def test_miss_then_hit(self, store):
        service = QueryService(store)
        key = flp_key("first-message-wins", n=2)
        cold = service.resolve(key)
        assert cold.source == "live" and cold.complete
        assert service.live == 1

        warm = service.resolve(key)
        assert warm.source == "store"
        assert warm.result == cold.result
        assert service.live == 1  # no second computation
        assert store.stats["hits"] == 1

    def test_fresh_service_same_store_all_hits(self, store):
        key = flp_key("first-message-wins", n=2)
        QueryService(store).resolve(key)
        # A new process, in effect: new service, same directory.
        reread = CertificateStore(store.root)
        second = QueryService(reread)
        answer = second.resolve(key)
        assert answer.source == "store"
        assert second.live == 0
        assert reread.stats == {
            "hits": 1, "misses": 0, "corrupt": 0, "puts": 0,
        }

    def test_submit_dedups_in_flight_requests(self, store):
        service = QueryService(store)
        key = flp_key("first-message-wins", n=2)
        first = service.submit(key)
        second = service.submit(flp_key("first-message-wins", n=2))
        assert first is second
        assert service.deduped == 1
        answer = second.result()
        assert first.done and second.done
        assert answer.source == "live"
        assert service.live == 1  # one computation served both handles

    def test_resolve_many_preserves_input_order(self, store):
        service = QueryService(store)
        keys = [
            valency_key("quorum-vote", 2, (0, 1)),
            flp_key("first-message-wins", n=2),
            valency_key("quorum-vote", 2, (1, 1)),
        ]
        answers = service.resolve_many(keys)
        assert [a.key for a in answers] == keys
        assert answers[0].result["bivalent"] is True
        assert answers[2].result["bivalent"] is False

    def test_unknown_kind_rejected_at_submit(self, store):
        service = QueryService(store)
        with pytest.raises(ValueError):
            service.submit(QueryKey.make("tarot-reading", question="why"))

    def test_incomplete_result_returned_but_never_stored(self, store):
        service = QueryService(store, budget=Budget(max_steps=5))
        answer = service.resolve(register_search_key(depth=2))
        assert answer.source == "live"
        assert not answer.complete
        assert answer.result["candidates"] == 5  # the budgeted prefix
        assert store.stats["puts"] == 0
        # The store still has no answer: the next query recomputes.
        again = QueryService(store, budget=Budget(max_steps=5))
        assert again.resolve(register_search_key(depth=2)).source == "live"


class TestCorruptionFallback:
    def test_corrupted_entry_falls_back_to_live_with_same_answer(
        self, store
    ):
        key = flp_key("quorum-vote", n=2)
        service = QueryService(store)
        original = service.resolve(key)

        # Flip one character inside the stored entry body.
        path = store._object_path(key.fingerprint())
        with open(path, "rb") as handle:
            raw = bytearray(handle.read())
        target = raw.index(b"agreement")
        raw[target] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(bytes(raw))

        recovered = QueryService(store)
        answer = recovered.resolve(key)
        assert answer.source == "live"  # verify failed -> recomputed
        assert store.stats["corrupt"] == 1
        assert answer.result == original.result  # same final answer
        # The recomputation repaired the entry on disk.
        healed = QueryService(CertificateStore(store.root))
        assert healed.resolve(key).source == "store"


class TestStoreBackedCertificates:
    def test_flp_certificate_identical_across_paths(self, store):
        live = flp_certificate(QuorumVote())          # no store
        cold = flp_certificate(QuorumVote(), store=store)   # miss + put
        warm = flp_certificate(QuorumVote(), store=store)   # hit
        assert store.stats["puts"] == 1
        assert store.stats["hits"] == 1
        for cert in (cold, warm):
            assert cert.claim == live.claim
            assert cert.technique == live.technique
            assert cert.details == live.details

    def test_flp_certificate_failure_modes_survive_the_store(self, store):
        cert = flp_certificate(WaitForAll(), store=store)
        assert cert.details["failure_mode"] == "blocks-under-crash"
        warm = flp_certificate(WaitForAll(), store=store)
        assert warm.details == cert.details

    def test_register_certificate_identical_across_paths(self, store):
        live = register_consensus_certificate(depth=1)
        cold = register_consensus_certificate(depth=1, store=store)
        warm = register_consensus_certificate(depth=1, store=store)
        assert store.stats["puts"] == 1 and store.stats["hits"] == 1
        for cert in (cold, warm):
            assert cert.claim == live.claim
            assert cert.candidates_checked == live.candidates_checked
            assert cert.details == live.details


class TestCampaignCaching:
    TARGETS = ("floodset-truncated-crash",)

    def _roster(self):
        registry = target_registry()
        return [registry[name] for name in self.TARGETS]

    def test_warm_campaign_is_byte_identical(self, store, tmp_path):
        roster = self._roster()
        cold, cold_source = run_campaign_cached(
            store, targets=roster, runs=4
        )
        warm, warm_source = run_campaign_cached(
            store, targets=roster, runs=4
        )
        assert (cold_source, warm_source) == ("live", "store")
        assert warm.complete and warm.runs == cold.runs
        assert warm.summary(roster) == cold.summary(roster)
        assert report_to_payload(warm) == report_to_payload(cold)

        # The acceptance criterion: artifacts written from the
        # store-reconstructed report are byte-identical to the live ones.
        assert cold.counterexamples  # the planted bug was found
        cold_dir = str(tmp_path / "cold")
        warm_dir = str(tmp_path / "warm")
        cold_paths = write_artifacts(cold, cold_dir)
        warm_paths = write_artifacts(warm, warm_dir)
        assert [os.path.basename(p) for p in cold_paths] == [
            os.path.basename(p) for p in warm_paths
        ]
        for cold_path, warm_path in zip(cold_paths, warm_paths):
            with open(cold_path, "rb") as handle:
                cold_bytes = handle.read()
            with open(warm_path, "rb") as handle:
                warm_bytes = handle.read()
            assert cold_bytes == warm_bytes

    def test_different_parameters_are_different_entries(self, store):
        roster = self._roster()
        run_campaign_cached(store, targets=roster, runs=4)
        _report, source = run_campaign_cached(
            store, targets=roster, runs=4, master_seed=7
        )
        assert source == "live"  # a different seed is a different question
        assert store.stats["puts"] == 2
