"""Tests for parallel composition of I/O automata."""

import pytest

from repro.core import (
    Composition,
    Execution,
    ModelError,
    Signature,
    TableAutomaton,
    compose,
)


def sender():
    sig = Signature(outputs=frozenset({"msg"}))
    return TableAutomaton(
        sig,
        initial=["ready"],
        transitions={("ready", "msg"): ["done"]},
        name="sender",
    )


def receiver():
    sig = Signature(inputs=frozenset({"msg"}), outputs=frozenset({"ack"}))
    return TableAutomaton(
        sig,
        initial=["waiting"],
        transitions={
            ("waiting", "msg"): ["got"],
            ("got", "ack"): ["waiting"],
        },
        name="receiver",
    )


class TestCompositionRules:
    def test_shared_output_rejected(self):
        with pytest.raises(ModelError):
            compose(sender(), sender())

    def test_internal_clash_rejected(self):
        a = TableAutomaton(
            Signature(internals=frozenset({"t"})),
            initial=["s"],
            transitions={("s", "t"): ["s"]},
            name="a",
        )
        b = TableAutomaton(
            Signature(inputs=frozenset({"t"})), initial=["s"], transitions={},
            name="b",
        )
        with pytest.raises(ModelError):
            compose(a, b)

    def test_empty_composition_rejected(self):
        with pytest.raises(ModelError):
            Composition([])

    def test_output_wins_over_input_in_signature(self):
        c = compose(sender(), receiver())
        assert "msg" in c.signature.outputs
        assert "msg" not in c.signature.inputs
        assert "ack" in c.signature.outputs


class TestCompositionSemantics:
    def test_initial_state_is_product(self):
        c = compose(sender(), receiver())
        assert list(c.initial_states()) == [("ready", "waiting")]

    def test_shared_action_synchronizes(self):
        c = compose(sender(), receiver())
        state = ("ready", "waiting")
        (after,) = c.apply(state, "msg")
        assert after == ("done", "got")

    def test_unshared_action_moves_one_component(self):
        c = compose(sender(), receiver())
        (after,) = c.apply(("done", "got"), "ack")
        assert after == ("done", "waiting")

    def test_enabled_actions_union(self):
        c = compose(sender(), receiver())
        assert set(c.enabled_actions(("ready", "waiting"))) == {"msg"}
        assert set(c.enabled_actions(("done", "got"))) == {"ack"}

    def test_full_execution(self):
        c = compose(sender(), receiver())
        e = Execution.run(c, ["msg", "ack"])
        assert e.last_state == ("done", "waiting")
        assert e.trace() == ("msg", "ack")

    def test_tasks_concatenate_components(self):
        c = compose(sender(), receiver())
        assert c.tasks() == [frozenset({"msg"}), frozenset({"ack"})]

    def test_component_helpers(self):
        c = compose(sender(), receiver())
        assert c.component_named("receiver") == 1
        assert c.component_state(("done", "got"), 1) == "got"
        with pytest.raises(ModelError):
            c.component_named("nobody")

    def test_three_way_composition(self):
        logger = TableAutomaton(
            Signature(inputs=frozenset({"msg", "ack"})),
            initial=[0],
            transitions={
                (0, "msg"): [1],
                (1, "ack"): [2],
            },
            name="logger",
        )
        c = compose(sender(), receiver(), logger)
        e = Execution.run(c, ["msg", "ack"])
        assert e.last_state == ("done", "waiting", 2)
