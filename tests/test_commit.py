"""Tests for the commit problem and the Dwork–Skeen message bound (E8)."""

import itertools

import pytest

from repro.consensus import (
    ABORT,
    BrokenCommit,
    COMMIT,
    DecentralizedCommit,
    TwoPhaseCommit,
    commit_rule_holds,
    dwork_skeen_series,
    failure_free_commit_run,
    information_paths_complete,
    message_count,
    run_synchronous,
)


class TestTwoPhaseCommit:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_all_commit(self, n):
        run = failure_free_commit_run(TwoPhaseCommit(), n)
        assert set(run.decisions.values()) == {COMMIT}
        assert commit_rule_holds(run)

    @pytest.mark.parametrize("inputs", [(1, 0, 1), (0, 1, 1), (1, 1, 0)])
    def test_any_abort_vote_aborts(self, inputs):
        run = run_synchronous(TwoPhaseCommit(), list(inputs), t=0)
        assert set(run.decisions.values()) == {ABORT}
        assert commit_rule_holds(run)

    def test_exhaustive_commit_rule(self):
        for n in (2, 3, 4):
            for inputs in itertools.product((0, 1), repeat=n):
                run = run_synchronous(TwoPhaseCommit(), list(inputs), t=0)
                assert commit_rule_holds(run), inputs

    @pytest.mark.parametrize("n", [2, 3, 6, 10])
    def test_meets_dwork_skeen_bound_exactly(self, n):
        run = failure_free_commit_run(TwoPhaseCommit(), n)
        assert message_count(run) == 2 * n - 2

    def test_information_paths_complete_on_commit(self):
        run = failure_free_commit_run(TwoPhaseCommit(), 4)
        complete, missing = information_paths_complete(run)
        assert complete, missing


class TestDecentralizedCommit:
    def test_correct_but_quadratic(self):
        n = 4
        run = failure_free_commit_run(DecentralizedCommit(), n)
        assert set(run.decisions.values()) == {COMMIT}
        assert message_count(run) == n * (n - 1)
        complete, _ = information_paths_complete(run)
        assert complete

    def test_exhaustive_commit_rule(self):
        for inputs in itertools.product((0, 1), repeat=4):
            run = run_synchronous(DecentralizedCommit(), list(inputs), t=0)
            assert commit_rule_holds(run)


class TestBrokenCommit:
    """Dropping below 2n-2 messages breaks the commit rule exactly as the
    path argument predicts."""

    def test_saves_a_message(self):
        n = 4
        run = failure_free_commit_run(BrokenCommit(), n)
        assert message_count(run) == 2 * n - 3

    def test_commit_rule_violated(self):
        n = 4
        # The ignored process (n-1) votes abort; commit happens anyway.
        inputs = [1] * (n - 1) + [0]
        run = run_synchronous(BrokenCommit(), inputs, t=0)
        assert not commit_rule_holds(run)
        assert run.decisions[0] == COMMIT

    def test_missing_information_path_is_the_cause(self):
        run = failure_free_commit_run(BrokenCommit(), 4)
        complete, missing = information_paths_complete(run)
        assert not complete
        # Exactly the ignored process's information never reaches anyone.
        assert all(src == 3 for src, _dest in missing)


class TestSeries:
    def test_dwork_skeen_series_shape(self):
        series = dwork_skeen_series(TwoPhaseCommit(), [2, 4, 8])
        for n, (measured, bound) in series.items():
            assert measured == bound == 2 * n - 2
