"""Tests for anonymous-ring symmetry (E12) and general-graph bounds (E14)."""

import networkx as nx
import pytest

from repro.core import ModelError
from repro.rings import (
    MaxTokenProtocol,
    SilentProtocol,
    edge_involvement_series,
    flooding_election,
    hidden_node_demonstration,
    itai_rodeh_election,
    run_lockstep,
    symmetry_certificate,
)


class TestSymmetryArgument:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_max_token_elects_everyone(self, n):
        cert = symmetry_certificate(MaxTokenProtocol(), n)
        assert cert.details["leaders_declared"] == n

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_silent_protocol_elects_nobody(self, n):
        cert = symmetry_certificate(SilentProtocol(), n)
        assert cert.details["leaders_declared"] == 0

    def test_states_remain_identical(self):
        trace = run_lockstep(MaxTokenProtocol(), 6, rounds=50)
        assert trace.states_identical_throughout

    def test_certificate_technique(self):
        cert = symmetry_certificate(MaxTokenProtocol(), 4)
        assert cert.technique == "symmetry"


class TestItaiRodeh:
    @pytest.mark.parametrize("seed", range(12))
    def test_elects_exactly_one_leader(self, seed):
        result = itai_rodeh_election(5, seed=seed)
        assert result.election_complete

    def test_larger_rings(self):
        for seed in range(5):
            result = itai_rodeh_election(9, seed=seed)
            assert result.elected_exactly_one

    def test_randomization_is_essential(self):
        """Different seeds give different message counts — the coin flips
        are doing the symmetry breaking the deterministic case cannot."""
        counts = {itai_rodeh_election(5, seed=s).messages for s in range(8)}
        assert len(counts) > 1


class TestGeneralGraphs:
    def graphs(self):
        return {
            "cycle-10": nx.cycle_graph(10),
            "complete-7": nx.complete_graph(7),
            "tree-15": nx.balanced_tree(2, 3),
            "random-12": nx.connected_watts_strogatz_graph(12, 4, 0.3, seed=5),
        }

    def test_all_edges_involved(self):
        series = edge_involvement_series(self.graphs())
        for name, (messages, edges, involved) in series.items():
            assert involved, name
            assert messages >= edges, name

    def test_spanning_tree_built(self):
        for name, graph in self.graphs().items():
            result = flooding_election(graph, seed=1)
            assert result.tree_is_spanning(graph), name

    def test_leader_is_maximum(self):
        graph = nx.complete_graph(6)
        assert flooding_election(graph).leader == 5

    def test_disconnected_rejected(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(ModelError):
            flooding_election(graph)

    def test_hidden_node_argument(self):
        """Skipping an edge makes two different worlds indistinguishable."""
        answer_small, answer_big = hidden_node_demonstration(n_path=4)
        assert answer_small == answer_big
        # Yet the true maxima differ: 3 in the path, 4 in the extension.
        assert answer_small != 3 or answer_big != 4
