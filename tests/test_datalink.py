"""Tests for data-link protocols and the message-stealing attacks (E15)."""

import pytest

from repro.datalink import (
    AlternatingBitReceiver,
    AlternatingBitSender,
    FairLossyScheduler,
    ScriptedAdversary,
    StenningReceiver,
    StenningSender,
    bounded_header_attack,
    crash_attack,
    packet_growth,
    run_datalink,
)


class TestAlternatingBit:
    @pytest.mark.parametrize("seed", range(8))
    def test_correct_over_fair_lossy_fifo(self, seed):
        messages = ["a", "b", "c", "d", "e"]
        result = run_datalink(
            AlternatingBitSender(), AlternatingBitReceiver(), messages,
            FairLossyScheduler(loss=0.35, seed=seed),
        )
        assert result.exactly_once_in_order
        assert result.sender_done

    def test_lossless_uses_minimal_packets(self):
        messages = ["a", "b"]
        script = []
        for _ in messages:
            script += [("transmit",), ("deliver", "fwd", 0), ("deliver", "bwd", 0)]
        script.append(("halt",))
        result = run_datalink(
            AlternatingBitSender(), AlternatingBitReceiver(), messages,
            ScriptedAdversary(script),
        )
        assert result.exactly_once_in_order
        assert result.data_packets == len(messages)

    def test_retransmissions_grow_with_loss(self):
        def packets(loss):
            result = run_datalink(
                AlternatingBitSender(), AlternatingBitReceiver(),
                ["a"] * 10, FairLossyScheduler(loss=loss, seed=3),
            )
            assert result.sender_done
            return result.data_packets

        assert packets(0.5) > packets(0.05)


class TestStenning:
    @pytest.mark.parametrize("seed", range(6))
    def test_correct_under_reordering_and_loss(self, seed):
        messages = [f"m{i}" for i in range(8)]
        result = run_datalink(
            StenningSender(), StenningReceiver(), messages,
            FairLossyScheduler(loss=0.3, seed=seed, reorder=True),
        )
        assert result.exactly_once_in_order

    def test_abp_equivalent_is_modulus_two(self):
        """Stenning mod 2 behaves like the alternating-bit protocol."""
        messages = ["a", "b", "c"]
        script = []
        for _ in messages:
            script += [("transmit",), ("deliver", "fwd", 0), ("deliver", "bwd", 0)]
        script.append(("halt",))
        result = run_datalink(
            StenningSender(modulus=2), StenningReceiver(modulus=2), messages,
            ScriptedAdversary(script),
        )
        assert result.exactly_once_in_order


class TestAttacks:
    def test_crash_attack_duplicates(self):
        cert = crash_attack()
        cert.revalidate()
        assert cert.details["delivered"] == ["m0", "m0"]

    def test_bounded_header_attack(self):
        """The wraparound replay defeats the bounded-header protocol (the
        bundled script drives one full wrap of modulus 2)."""
        cert = bounded_header_attack(2)
        assert cert.details["bounded_sender_done"]
        assert cert.details["bounded_delivered"] != ["a", "b", "c"]

    def test_unbounded_headers_survive_the_same_script(self):
        cert = bounded_header_attack(2)
        unbounded_delivered = cert.details["unbounded_delivered"]
        # No duplication and no wrong message — just a stalled channel.
        assert unbounded_delivered == ["a", "b"]


class TestPacketGrowth:
    def test_headers_grow_with_message_count(self):
        growth = packet_growth(message_counts=(4, 16))
        assert growth[16]["header_bits"] > growth[4]["header_bits"]

    def test_delivery_stays_correct(self):
        # packet_growth raises internally if any run mis-delivers.
        growth = packet_growth(message_counts=(8,), loss=0.5)
        assert growth[8]["packets_per_message"] >= 1.0
