"""Streaming mega-campaigns: constant memory, corpus, coverage, dedup.

The contract under test: the streaming fold (``keep_results=False``) is
*observably identical* to the batch path — same summary bytes, same
counterexample artifacts, same tallies — at any worker count, while its
memory peak is bounded by behaviours found rather than cases run; the
schedule corpus round-trips through the certificate store and replays as
a regression suite that re-finds every planted bug; and the mobile-fault
satellite target exhibits the Gafni–Losa boundary exactly (relentless
muting breaks agreement, bounded staleness never does).
"""

import json
import os
import random
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    PASS,
    VIOLATION,
    CorpusEntry,
    MobileFloodSetTarget,
    ScheduleCorpus,
    default_targets,
    replay_corpus,
    run_campaign,
    write_artifacts,
)
from repro.chaos.__main__ import main as chaos_main
from repro.chaos.generators import (
    mobile_omission_adversary,
    mutate_schedule,
    muted_rounds,
    random_mobile_crash_atoms,
)
from repro.chaos.monitors import BoundedStalenessMonitor
from repro.chaos.targets import (
    AlternatingBitTarget,
    FloodSetCrashTarget,
    LCRRingTarget,
)
from repro.core.artifacts import AtomicLineWriter
from repro.core.budget import Budget
from repro.parallel.pool import WorkerPool

MASTER_SEED = 0
RUNS = 40


def _observable(report):
    """Everything a streaming report must share with its batch twin."""
    return (
        report.summary(),
        report.tallies,
        report.coverage,
        report.cases,
        report.complete,
        report.resume_at,
        [
            (cx.target, cx.seed, cx.fingerprint, cx.shrunk, cx.occurrences)
            for cx in report.counterexamples
        ],
    )


def _artifact_bytes(report, directory):
    write_artifacts(report, directory)
    return {
        name: open(os.path.join(directory, name), "rb").read()
        for name in sorted(os.listdir(directory))
    }


# ---------------------------------------------------------------------------
# Streaming == batch, at workers 1 and 2
# ---------------------------------------------------------------------------


class TestStreamingEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(
        master_seed=st.integers(0, 2**16),
        runs=st.integers(1, 5),
        roster=st.sampled_from(
            [
                (FloodSetCrashTarget,),
                (MobileFloodSetTarget, LCRRingTarget),
                (FloodSetCrashTarget, AlternatingBitTarget),
            ]
        ),
    )
    def test_streaming_matches_batch(self, master_seed, runs, roster):
        batch = run_campaign(
            targets=[cls() for cls in roster],
            runs=runs,
            master_seed=master_seed,
            shrink_checks=8,
        )
        stream = run_campaign(
            targets=[cls() for cls in roster],
            runs=runs,
            master_seed=master_seed,
            shrink_checks=8,
            keep_results=False,
        )
        assert stream.results is None
        assert _observable(stream) == _observable(batch)

    def test_streaming_matches_batch_at_workers_2(self, tmp_path):
        kwargs = dict(runs=12, master_seed=MASTER_SEED, shrink_checks=32)
        batch = run_campaign(**kwargs)
        variants = {
            "stream-w1": run_campaign(keep_results=False, **kwargs),
            "stream-w2": run_campaign(
                keep_results=False, workers=2, **kwargs
            ),
            "batch-w2": run_campaign(workers=2, **kwargs),
        }
        reference = _artifact_bytes(batch, str(tmp_path / "batch"))
        assert reference, "campaign found no counterexamples to compare"
        for name, report in variants.items():
            assert _observable(report) == _observable(batch), name
            assert (
                _artifact_bytes(report, str(tmp_path / name)) == reference
            ), f"{name} artifacts not byte-identical to batch"

    def test_budget_interrupt_and_resume_while_streaming(self):
        roster = lambda: [FloodSetCrashTarget(), LCRRingTarget()]  # noqa: E731
        partial = run_campaign(
            targets=roster(), runs=6, master_seed=MASTER_SEED,
            keep_results=False, shrink=False, budget=Budget(max_steps=4),
        )
        assert not partial.complete
        assert partial.resume_at == {
            "floodset-truncated-crash": 4, "lcr-ring": 0,
        }
        finished = run_campaign(
            targets=roster(), runs=6, master_seed=MASTER_SEED,
            keep_results=False, shrink=False, resume=partial,
        )
        straight = run_campaign(
            targets=roster(), runs=6, master_seed=MASTER_SEED,
            keep_results=False, shrink=False,
        )
        assert finished.complete
        assert finished.verdict_counts() == straight.verdict_counts()


# ---------------------------------------------------------------------------
# Bounded memory
# ---------------------------------------------------------------------------


def _peak_bytes(runs, keep_results):
    tracemalloc.start()
    run_campaign(
        targets=[FloodSetCrashTarget()],
        runs=runs,
        master_seed=MASTER_SEED,
        shrink=False,
        keep_results=keep_results,
    )
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


class TestBoundedMemory:
    def test_streaming_peak_is_case_count_independent(self):
        small = _peak_bytes(200, keep_results=False)
        large = _peak_bytes(2000, keep_results=False)
        # 10x the cases must not cost 10x the memory: the fold holds
        # tallies and a behaviour set, never the case stream.  The
        # residual growth is the coverage set — bounded by the target's
        # schedule space, not the case count — hence the 4x allowance
        # against a 10x input.
        assert large < small * 4, (
            f"streaming peak grew {large / small:.1f}x for 10x cases "
            f"({small} -> {large} bytes); the fold is accumulating per-case "
            "state"
        )

    def test_batch_peak_grows_where_streaming_stays_flat(self):
        # The contrast that makes the previous assertion meaningful:
        # keeping results *does* scale with cases, and at 2000 cases the
        # batch path already needs a multiple of the streaming peak.
        batch_small = _peak_bytes(200, keep_results=True)
        batch_large = _peak_bytes(2000, keep_results=True)
        stream_large = _peak_bytes(2000, keep_results=False)
        assert batch_large > batch_small * 3
        assert batch_large > stream_large * 2


# ---------------------------------------------------------------------------
# Corpus: round-trip, replay, mutation
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """A pinned fixed-seed corpus from one full-roster campaign."""
    directory = str(tmp_path_factory.mktemp("corpus"))
    report = run_campaign(
        runs=RUNS,
        master_seed=MASTER_SEED,
        shrink=False,
        keep_results=False,
        corpus=directory,
    )
    assert report.corpus_added > 0
    return directory


class TestCorpus:
    def test_entry_payload_roundtrip(self):
        entry = CorpusEntry(
            target="floodset-mobile-omission",
            trace_fingerprint="ab" * 32,
            atoms=(("mute", 1, 0), ("mute", 2, 3)),
            seed=1234,
            verdict=VIOLATION,
        )
        assert CorpusEntry.from_payload(entry.payload()) == entry

    def test_add_is_idempotent_and_store_verified(self, tmp_path):
        corpus = ScheduleCorpus(str(tmp_path))
        entry = CorpusEntry("t", "ff" * 32, (("x", 1),), 7, PASS)
        assert corpus.add(entry)
        assert not corpus.add(entry)
        assert corpus.entries() == [entry]

    def test_corrupt_entry_is_skipped_not_replayed(self, tmp_path):
        corpus = ScheduleCorpus(str(tmp_path))
        corpus.add(CorpusEntry("t", "aa" * 32, (("x", 1),), 7, PASS))
        (path,) = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(str(tmp_path))
            for name in names
        ]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": "garbage"}\n')
        assert corpus.entries() == []
        assert corpus.store.corrupt == 1

    def test_campaign_against_existing_corpus_adds_nothing(self, corpus_dir):
        again = run_campaign(
            runs=RUNS,
            master_seed=MASTER_SEED,
            shrink=False,
            keep_results=False,
            corpus=corpus_dir,
        )
        assert again.corpus_added == 0

    def test_replay_refinds_every_planted_bug(self, corpus_dir):
        outcome = replay_corpus(ScheduleCorpus(corpus_dir))
        assert outcome["fingerprint_mismatches"] == []
        assert outcome["unknown_targets"] == []
        planted = {
            target.name
            for target in default_targets()
            if target.expect_violation
        }
        assert planted <= set(outcome["violations_refound"]), (
            "corpus replay lost planted bugs: "
            f"{planted - set(outcome['violations_refound'])}"
        )
        for stats in outcome["per_target"].values():
            assert stats["reproduced"] == stats["entries"]

    def test_mutation_stage_is_deterministic(self, tmp_path):
        def mega(directory):
            return run_campaign(
                targets=[FloodSetCrashTarget()],
                runs=10,
                master_seed=MASTER_SEED,
                shrink=False,
                keep_results=False,
                corpus=directory,
                mutations=3,
            )

        first = mega(str(tmp_path / "a"))
        second = mega(str(tmp_path / "b"))
        assert _observable(first) == _observable(second)
        assert first.cases > 10  # the mutation stage actually ran
        assert (
            ScheduleCorpus(str(tmp_path / "a")).fingerprints()
            == ScheduleCorpus(str(tmp_path / "b")).fingerprints()
        )

    def test_mutate_schedule_seeded_and_closed_over_atoms(self):
        target = FloodSetCrashTarget()
        atoms = target.generate(random.Random(5))
        for seed in range(20):
            once = mutate_schedule(
                random.Random(seed), atoms, target.generate
            )
            again = mutate_schedule(
                random.Random(seed), atoms, target.generate
            )
            assert once == again
            assert isinstance(once, tuple)


# ---------------------------------------------------------------------------
# Violation dedup by shrunk fingerprint
# ---------------------------------------------------------------------------


class TestViolationDedup:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(runs=RUNS, master_seed=MASTER_SEED)

    def test_exemplars_unique_by_shrunk_fingerprint(self, report):
        keys = [
            (cx.target, cx.fingerprint) for cx in report.counterexamples
        ]
        assert len(keys) == len(set(keys))

    def test_occurrences_account_for_every_violating_run(self, report):
        stats = report.dedup_stats()
        counts = report.verdict_counts()
        for name, per in stats.items():
            assert per["violations"] == counts[name][VIOLATION]
            assert per["exemplars"] <= per["violations"]

    def test_planted_bugs_collapse_to_few_exemplars(self, report):
        stats = report.dedup_stats()
        collapsed = [
            name
            for name, per in stats.items()
            if per["violations"] > per["exemplars"]
        ]
        assert collapsed, (
            "40 runs/target re-found bugs without any duplicate exemplars — "
            "dedup never engaged"
        )

    def test_summary_reports_dedup_and_occurrences(self, report):
        text = report.summary()
        assert "violation dedup:" in text
        assert " x" in text  # per-exemplar occurrence counts


# ---------------------------------------------------------------------------
# The mobile-fault target (Gafni–Losa boundary)
# ---------------------------------------------------------------------------


class TestMobileFaults:
    def test_relentless_muting_breaks_full_round_floodset(self):
        target = MobileFloodSetTarget()
        atoms = tuple(
            ("mute", rnd, 0) for rnd in range(1, target.ROUNDS + 1)
        )
        trace = target.run(atoms, seed=0)
        violations = target.violations(trace, atoms)
        assert any(v.monitor == "agreement" for v in violations)
        assert all(v.monitor != "bounded-staleness" for v in violations)

    def test_bounded_staleness_schedules_always_agree(self):
        target = MobileFloodSetTarget()
        rng = random.Random(11)
        checked = 0
        for _ in range(200):
            atoms = random_mobile_crash_atoms(
                rng, n=target.N, rounds=target.ROUNDS
            )
            monitor = BoundedStalenessMonitor(
                muted_rounds(atoms), target.ROUNDS, range(target.N)
            )
            if monitor.fully_muted():
                continue  # the impossible side; agreement may break there
            checked += 1
            trace = target.run(atoms, seed=0)
            assert target.violations(trace, atoms) == []
        assert checked > 50

    def test_shrinks_to_one_mute_per_round(self):
        report = run_campaign(
            targets=[MobileFloodSetTarget()],
            runs=RUNS,
            master_seed=MASTER_SEED,
        )
        smallest = min(
            report.counterexamples, key=lambda cx: len(cx.shrunk)
        )
        assert len(smallest.shrunk) == MobileFloodSetTarget.ROUNDS
        victims = {pid for (_tag, _rnd, pid) in smallest.shrunk}
        assert len(victims) == 1  # one process silenced in every round

    def test_mobile_adversary_mutes_every_recipient(self):
        atoms = (("mute", 2, 1),)
        adversary = mobile_omission_adversary(atoms, n=4)
        assert adversary.drops == {(2, 1, 0), (2, 1, 2), (2, 1, 3)}


# ---------------------------------------------------------------------------
# Streaming plumbing: AtomicLineWriter, map_stream, case log, throughput
# ---------------------------------------------------------------------------


class TestAtomicLineWriter:
    def test_commit_publishes_all_lines(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        with AtomicLineWriter(path) as writer:
            writer.write_json_line({"a": 1})
            writer.write_line("plain")
            writer.write("raw\n")
            assert not os.path.exists(path)  # nothing until commit
        assert open(path, encoding="utf-8").read() == '{"a": 1}\nplain\nraw\n'

    def test_exception_discards_staging(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        with pytest.raises(RuntimeError):
            with AtomicLineWriter(path) as writer:
                writer.write_line("half")
                raise RuntimeError("killed mid-write")
        assert os.listdir(str(tmp_path)) == []

    def test_line_counter(self, tmp_path):
        writer = AtomicLineWriter(str(tmp_path / "n.txt"))
        writer.write_line("one")
        writer.write("two\nthree\n")
        assert writer.lines == 3
        writer.discard()


class TestMapStream:
    def test_serial_yields_pairs_in_order(self):
        with WorkerPool(1) as pool:
            pairs = list(pool.map_stream(lambda x: x * x, range(7)))
        assert pairs == [(i, i * i) for i in range(7)]

    def test_parallel_preserves_submission_order(self):
        with WorkerPool(2) as pool:
            pairs = list(
                pool.map_stream(_square, range(50), window=3, chunk=4)
            )
        assert pairs == [(i, i * i) for i in range(50)]

    def test_input_is_pulled_lazily(self):
        pulled = []

        def source():
            for i in range(1000):
                pulled.append(i)
                yield i

        with WorkerPool(1) as pool:
            stream = pool.map_stream(lambda x: x, source())
            for _item, _result in zip(range(3), stream):
                pass
        assert len(pulled) < 10  # nowhere near the 1000 available


def _square(x):
    return x * x


class TestCaseLogAndThroughput:
    def test_case_log_is_complete_and_parseable(self, tmp_path):
        path = str(tmp_path / "cases.jsonl")
        report = run_campaign(
            targets=[FloodSetCrashTarget()],
            runs=8,
            master_seed=MASTER_SEED,
            shrink=False,
            keep_results=False,
            case_log=path,
        )
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8").read().splitlines()
        ]
        header, cases = lines[0], lines[1:]
        assert header["schema"] == "repro-chaos-case-log/v1"
        assert len(cases) == report.cases == 8
        assert [c["index"] for c in cases] == list(range(8))
        assert all(c["verdict"] in (PASS, VIOLATION) for c in cases)

    def test_throughput_is_populated_but_never_compared(self):
        report = run_campaign(
            targets=[LCRRingTarget()], runs=3, master_seed=MASTER_SEED
        )
        assert report.throughput["cases_per_s"] > 0
        assert report.throughput["seconds"] >= 0
        from repro.chaos.campaign import report_to_payload

        assert "throughput" not in report_to_payload(report)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestMegaCampaignCLI:
    def test_cases_flag_streams_and_reports_throughput(self, capsys):
        code = chaos_main(
            ["--cases", "10", "--seed", "0", "--targets", "lcr-ring"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "streamed 10 cases at" in out

    def test_corpus_build_and_replay_gate(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        code = chaos_main(
            ["--runs", "40", "--seed", "0", "--no-shrink", "--stream",
             "--corpus", corpus]
        )
        assert code == 0
        assert "novel" in capsys.readouterr().out
        assert chaos_main(["--replay-corpus", corpus]) == 0
        assert "still violating" in capsys.readouterr().out

    def test_replay_gate_fails_when_a_bug_is_missing(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        # A corpus fed only by the healthy control cannot re-find the
        # planted bugs: the gate must fail loudly.
        assert chaos_main(
            ["--runs", "3", "--seed", "0", "--no-shrink",
             "--targets", "lcr-ring", "--corpus", corpus]
        ) == 0
        assert chaos_main(["--replay-corpus", corpus]) == 1
        assert "no corpus schedule re-finds" in capsys.readouterr().err

    def test_store_refuses_corpus_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            chaos_main(
                ["--store", str(tmp_path / "s"),
                 "--corpus", str(tmp_path / "c")]
            )

    def test_mutations_require_corpus(self):
        with pytest.raises(SystemExit):
            chaos_main(["--mutations", "2"])
