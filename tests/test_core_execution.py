"""Tests for executions, traces and schedules."""

import pytest

from repro.core import (
    Execution,
    ExecutionError,
    Signature,
    TableAutomaton,
    check_execution,
)


def toggler():
    sig = Signature(
        outputs=frozenset({"flip"}), internals=frozenset({"tick"})
    )
    return TableAutomaton(
        sig,
        initial=["off"],
        transitions={
            ("off", "flip"): ["on"],
            ("on", "flip"): ["off"],
            ("on", "tick"): ["on"],
        },
        name="toggler",
    )


class TestExecution:
    def test_initial_execution(self):
        e = Execution.initial(toggler())
        assert e.first_state == "off"
        assert e.last_state == "off"
        assert len(e) == 0

    def test_extend_deterministic(self):
        e = Execution.initial(toggler()).extend("flip")
        assert e.last_state == "on"
        assert e.actions == ("flip",)

    def test_extend_with_explicit_state_validates(self):
        auto = toggler()
        e = Execution.initial(auto)
        with pytest.raises(ExecutionError):
            e.extend("flip", "off")  # flip from off goes to on, not off

    def test_run_over_schedule(self):
        e = Execution.run(toggler(), ["flip", "tick", "flip"])
        assert e.states == ("off", "on", "on", "off")

    def test_length_mismatch_rejected(self):
        auto = toggler()
        with pytest.raises(ExecutionError):
            Execution(auto, ("off",), ("flip",))

    def test_trace_filters_internal_actions(self):
        e = Execution.run(toggler(), ["flip", "tick", "flip"])
        assert e.trace() == ("flip", "flip")
        assert e.schedule() == ("flip", "tick", "flip")

    def test_prefix(self):
        e = Execution.run(toggler(), ["flip", "tick", "flip"])
        p = e.prefix(1)
        assert p.actions == ("flip",)
        assert p.last_state == "on"
        with pytest.raises(ExecutionError):
            e.prefix(4)

    def test_steps_iteration(self):
        e = Execution.run(toggler(), ["flip", "flip"])
        assert list(e.steps()) == [
            ("off", "flip", "on"),
            ("on", "flip", "off"),
        ]

    def test_project_actions(self):
        e = Execution.run(toggler(), ["flip", "tick", "flip"])
        assert e.project_actions(lambda a: a == "tick") == ("tick",)

    def test_invariant_helpers(self):
        e = Execution.run(toggler(), ["flip"])
        assert e.satisfies_invariant(lambda s: s in ("on", "off"))
        assert not e.satisfies_invariant(lambda s: s == "off")
        assert e.first_violation(lambda s: s == "off") == 1

    def test_describe_contains_actions(self):
        e = Execution.run(toggler(), ["flip"])
        assert "flip" in e.describe()


class TestCheckExecution:
    def test_valid_execution_passes(self):
        e = Execution.run(toggler(), ["flip", "flip"])
        check_execution(e)

    def test_bad_start_state_rejected(self):
        auto = toggler()
        bad = Execution(auto, ("on",), ())
        with pytest.raises(ExecutionError):
            check_execution(bad)

    def test_bad_transition_rejected(self):
        auto = toggler()
        bad = Execution(auto, ("off", "off"), ("flip",))
        with pytest.raises(ExecutionError):
            check_execution(bad)
