"""Resource budgets and graceful degradation across the substrates.

The contract under test: :class:`~repro.core.budget.Budget` is an
immutable policy, :class:`~repro.core.budget.BudgetMeter` the mutable
account, overdraft raises a structured :class:`BudgetExceeded` that
existing ``SearchBudgetExceeded`` handlers still catch — and every
budget-aware consumer degrades *gracefully*: explorations return a
resumable partial result on the shared frontier, the register search
returns a census with a resume cursor that accumulates to the unbudgeted
answer, and every simulator accepts a meter that preempts a run without
corrupting anything.  Plus the structured-replay satellites this PR
ships alongside the budgets: :class:`ReplayDivergence` diagnostics and
the trace JSONL round-trip.
"""

import time

import pytest

from repro.asynchronous.flp import QuorumVote
from repro.asynchronous.network import AsyncConsensusSystem
from repro.core import (
    SearchBudgetExceeded,
    Signature,
    TableAutomaton,
    explore,
)
from repro.core.budget import Budget, BudgetExceeded
from repro.core.runtime import (
    DECIDE,
    SEND,
    ReplayDivergence,
    ReplayError,
    SimulationRuntime,
    Trace,
)
from repro.core.scheduler import RandomScheduler
from repro.datalink.protocols import AlternatingBitReceiver, AlternatingBitSender
from repro.datalink.simulate import FairLossyScheduler, run_datalink
from repro.registers.exhaustive import search_register_consensus
from repro.rings.lcr import LCRProcess
from repro.rings.simulator import run_async_ring
from repro.shared_memory import run_system
from repro.shared_memory.mutex import peterson_system


# ---------------------------------------------------------------------------
# Budget and BudgetMeter semantics
# ---------------------------------------------------------------------------


class TestBudgetSemantics:
    def test_default_budget_is_unlimited(self):
        budget = Budget()
        assert budget.unlimited
        meter = budget.meter()
        for _ in range(10_000):
            meter.charge_steps()
        meter.charge_states(10_000)
        meter.check_time()

    def test_step_overdraft_is_structured(self):
        meter = Budget(max_steps=3).meter("unit-test")
        for _ in range(3):
            meter.charge_steps()
        with pytest.raises(BudgetExceeded) as info:
            meter.charge_steps()
        assert info.value.resource == "steps"
        assert info.value.spent == 4
        assert info.value.limit == 3
        assert "unit-test" in str(info.value)

    def test_state_overdraft(self):
        meter = Budget(max_states=2).meter()
        meter.charge_states(2)
        with pytest.raises(BudgetExceeded) as info:
            meter.charge_states()
        assert info.value.resource == "states"

    def test_time_overdraft(self):
        meter = Budget(max_seconds=0.001).meter()
        time.sleep(0.01)
        with pytest.raises(BudgetExceeded) as info:
            meter.check_time()
        assert info.value.resource == "seconds"

    def test_subclasses_search_budget_exceeded(self):
        # Existing `except SearchBudgetExceeded` handlers keep working.
        with pytest.raises(SearchBudgetExceeded):
            Budget(max_steps=0).meter().charge_steps()

    def test_snapshot_reports_spending(self):
        meter = Budget(max_steps=100).meter()
        meter.charge_steps(7)
        meter.charge_states(2)
        snapshot = meter.snapshot()
        assert snapshot["steps"] == 7
        assert snapshot["states"] == 2


# ---------------------------------------------------------------------------
# Graceful exploration: partial results on the shared frontier
# ---------------------------------------------------------------------------


def _counter(limit):
    sig = Signature(internals=frozenset({"inc"}))
    transitions = {(i, "inc"): [i + 1] for i in range(limit)}
    return TableAutomaton(sig, initial=[0], transitions=transitions, name="counter")


class TestExploreBudget:
    def test_partial_result_instead_of_raising(self):
        result = explore(_counter(50), budget=Budget(max_states=10))
        assert not result.complete
        assert result.budget_exceeded is not None
        assert result.budget_exceeded.resource == "states"
        assert 0 < len(result.reachable) <= 11

    def test_resume_on_the_shared_frontier(self):
        automaton = _counter(50)
        partial = explore(automaton, budget=Budget(max_states=10))
        assert not partial.complete
        finished = explore(automaton)
        assert finished.complete
        assert finished.reachable == set(range(51))
        # The resumed path is still navigable end to end.
        assert len(finished.path_to(50)) == 50

    def test_unlimited_budget_is_a_no_op(self):
        result = explore(_counter(5), budget=Budget())
        assert result.complete
        assert result.reachable == set(range(6))


class TestRegisterSearchBudget:
    def test_sliced_search_accumulates_to_the_full_census(self):
        full = search_register_consensus(depth=1)
        assert full.complete

        sliced = search_register_consensus(depth=1, budget=Budget(max_steps=5))
        slices = 1
        while not sliced.complete:
            assert sliced.resume_at > 0
            sliced = search_register_consensus(
                depth=1, budget=Budget(max_steps=5), resume=sliced
            )
            slices += 1
        assert slices > 1
        assert sliced.candidates == full.candidates
        assert sliced.solutions == full.solutions
        assert sliced.agreement_failures == full.agreement_failures
        assert sliced.validity_failures == full.validity_failures
        assert sliced.wait_freedom_failures == full.wait_freedom_failures


# ---------------------------------------------------------------------------
# Budgets threaded through the simulators
# ---------------------------------------------------------------------------


class TestSimulatorMeters:
    def test_async_network_run_is_preempted(self):
        system = AsyncConsensusSystem(QuorumVote(), 3)
        meter = Budget(max_steps=4).meter("async")
        with pytest.raises(BudgetExceeded):
            system.run_fair_traced((0, 1, 1), seed=5, meter=meter)

    def test_datalink_run_is_preempted(self):
        meter = Budget(max_steps=4).meter("datalink")
        with pytest.raises(BudgetExceeded):
            run_datalink(
                AlternatingBitSender(), AlternatingBitReceiver(),
                ["a", "b"], FairLossyScheduler(loss=0.2, seed=3),
                meter=meter,
            )

    def test_ring_run_is_preempted(self):
        meter = Budget(max_steps=4).meter("ring")
        with pytest.raises(BudgetExceeded):
            run_async_ring(
                processes=[LCRProcess(i) for i in (3, 1, 2)],
                seed=0, meter=meter,
            )

    def test_shared_memory_run_is_preempted(self):
        system = peterson_system()
        start = next(iter(system.initial_states()))
        for action in sorted(system.signature.inputs, key=repr):
            start = system.step(start, action)
        meter = Budget(max_steps=4).meter("shared-memory")
        with pytest.raises(BudgetExceeded):
            run_system(
                system, scheduler=RandomScheduler(seed=4), start=start,
                max_steps=25, meter=meter,
            )

    def test_generous_meter_changes_nothing(self):
        system = AsyncConsensusSystem(QuorumVote(), 3)
        plain = system.run_fair_traced((0, 1, 1), seed=5).trace
        metered = system.run_fair_traced(
            (0, 1, 1), seed=5, meter=Budget(max_steps=10**6).meter()
        ).trace
        assert metered.fingerprint() == plain.fingerprint()


# ---------------------------------------------------------------------------
# Structured replay divergence
# ---------------------------------------------------------------------------


def _toy_trace(payloads):
    runtime = SimulationRuntime(substrate="toy", protocol="unit", seed=0)
    for i, payload in enumerate(payloads):
        runtime.emit(SEND, f"p{i % 2}", payload, round=1 + i // 2)
    runtime.emit(DECIDE, "p0", payloads[-1])
    return runtime.finish(outcome={"decisions": tuple(payloads)})


class TestReplayDivergence:
    def test_pinpoints_first_divergent_event(self):
        original = _toy_trace(("a", "b", "c"))
        fresh = _toy_trace(("a", "x", "c"))
        divergence = ReplayDivergence(original, fresh)
        assert isinstance(divergence, ReplayError)
        assert divergence.index == 1
        assert divergence.expected.payload == "b"
        assert divergence.actual.payload == "x"

    def test_prefix_divergence_points_past_the_shorter_run(self):
        original = _toy_trace(("a", "b", "c"))
        fresh = Trace(
            substrate=original.substrate,
            protocol=original.protocol,
            seed=original.seed,
            events=original.events[:-1],
            outcome=original.outcome,
        )
        divergence = ReplayDivergence(original, fresh)
        assert divergence.index == len(fresh.events)
        assert divergence.expected == original.events[-1]
        assert divergence.actual is None

    def test_outcome_only_divergence_has_no_event_index(self):
        original = _toy_trace(("a", "b"))
        fresh = Trace(
            substrate=original.substrate,
            protocol=original.protocol,
            seed=original.seed,
            events=original.events,
            outcome=(("decisions", ("a", "z")),),
        )
        divergence = ReplayDivergence(original, fresh)
        assert divergence.index is None
        assert "outcome/metadata diverged" in str(divergence)


# ---------------------------------------------------------------------------
# Trace JSONL round-trip
# ---------------------------------------------------------------------------


class TestTraceJsonl:
    def test_round_trip_preserves_fingerprint(self):
        trace = _toy_trace(("m", ("tup", 1), frozenset({1, 2})))
        reloaded = Trace.from_jsonl(trace.to_jsonl())
        assert reloaded.fingerprint() == trace.fingerprint()
        assert reloaded.events == trace.events
        assert reloaded.outcome == trace.outcome

    def test_tuple_and_frozenset_payloads_keep_their_types(self):
        trace = _toy_trace((("nested", (1, 2)), frozenset({("a", 3)})))
        reloaded = Trace.from_jsonl(trace.to_jsonl())
        assert reloaded.events[0].payload == ("nested", (1, 2))
        assert isinstance(reloaded.events[1].payload, frozenset)

    def test_corruption_is_detected(self):
        text = _toy_trace(("a", "b")).to_jsonl()
        lines = text.splitlines()
        lines[1] = lines[1].replace('"a"', '"z"')
        with pytest.raises(ReplayError):
            Trace.from_jsonl("\n".join(lines) + "\n")

    def test_corruption_error_names_both_fingerprints(self):
        from repro.core.runtime import FingerprintMismatch

        original = _toy_trace(("a", "b"))
        text = original.to_jsonl()
        lines = text.splitlines()
        lines[1] = lines[1].replace('"a"', '"z"')
        with pytest.raises(FingerprintMismatch) as excinfo:
            Trace.from_jsonl("\n".join(lines) + "\n")
        err = excinfo.value
        # Structured fields: the recorded digest, the recomputed one, and
        # a context naming what was being verified.
        assert err.expected == original.fingerprint()
        assert err.actual != err.expected
        assert len(err.actual) == 64
        assert "reloaded trace" in err.context
        assert err.expected in str(err) and err.actual in str(err)

    def test_verify_false_skips_the_check(self):
        text = _toy_trace(("a", "b")).to_jsonl()
        lines = text.splitlines()
        lines[1] = lines[1].replace('"a"', '"z"')
        reloaded = Trace.from_jsonl("\n".join(lines) + "\n", verify=False)
        assert reloaded.events[0].payload == "z"

    def test_reloaded_trace_carries_no_replayer(self):
        trace = _toy_trace(("a",))
        assert not Trace.from_jsonl(trace.to_jsonl()).replayable
