"""The packed state engine: frozen-path equivalence, id lifetime, dedup.

The bit-packed engine (:mod:`repro.core.packed`) is an internal
representation change — dense integer ids and CSR adjacency behind the
same public APIs.  These tests pin the contract from three sides:

* **frozen equivalence** — reachability sets, BFS parent maps and
  valency labels over the packed stores are identical to a naive
  frozen-state reference executed per query, across hypothesis-random
  automata;
* **id lifetime** — ids never leak across interners/automata, and
  ``clear_intern_table`` cascades into every registered per-graph
  interner (a new interning epoch invalidates all packed state);
* **fingerprint stability** — fixed-seed chaos campaigns produce the
  same counterexample fingerprints at any worker count, so packing the
  parallel fabric's id-table deltas changed no observable output.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.campaign import run_campaign
from repro.chaos.targets import FloodSetCrashTarget, LCRRingTarget
from repro.core import (
    IdFlags,
    IdToValue,
    PackedGraph,
    Signature,
    StateInterner,
    TableAutomaton,
    ValueTable,
    clear_intern_table,
    intern_table_stats,
    state_graph,
)
from repro.registers.exhaustive import (
    ProgramConsensus,
    _packed_verdict_kind,
    enumerate_programs,
)
from repro.registers.herlihy import ObjectConsensusSystem, wait_free_verdict


# ---------------------------------------------------------------------------
# Packed primitives


class TestPrimitives:
    def test_interner_ids_are_dense_and_stable(self):
        interner = StateInterner()
        a = interner.intern(("a",))
        b = interner.intern(("b",))
        assert (a, b) == (0, 1)
        assert interner.intern(("a",)) == a
        assert interner.state_of(b) == ("b",)
        assert len(interner) == 2

    def test_packed_graph_rows_are_append_once(self):
        g = PackedGraph()
        s = g.interner.intern("s")
        t = g.interner.intern("t")
        g.add_row(s, ["go"], [t])
        g.add_row(s, ["other"], [s])  # ignored: first sweep wins
        assert list(g.successors_ids(s)) == [t]
        assert g.labels_of(s) == ["go"]
        assert g.rows == 1

    def test_packed_graph_rejects_misaligned_rows(self):
        g = PackedGraph()
        s = g.interner.intern("s")
        with pytest.raises(ValueError):
            g.add_row(s, ["one", "two"], [0])
        assert not g.is_expanded(s)

    def test_id_flags_membership_and_count(self):
        flags = IdFlags()
        assert flags.add(5) and not flags.add(5)
        assert 5 in flags and 4 not in flags
        flags.discard(5)
        assert 5 not in flags and len(flags) == 0

    def test_id_to_value_absent_sentinel(self):
        table = IdToValue()
        assert table.get(3) == -1 and 3 not in table
        table.set(3, 7)
        assert table.get(3) == 7 and len(table) == 1

    def test_value_table_masks_round_trip(self):
        table = ValueTable([0, 1])
        mask = table.mask_of([1, 0])
        assert table.set_of(mask) == frozenset({0, 1})
        assert table.set_of(table.bit_of(1)) == frozenset({1})


# ---------------------------------------------------------------------------
# Frozen-path equivalence on random automata


@st.composite
def table_automata(draw):
    """A random automaton over integer states with internal actions."""
    n = draw(st.integers(min_value=1, max_value=8))
    actions = ["a", "b"]
    transitions = {}
    for state in range(n):
        for action in actions:
            succs = draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    max_size=3,
                )
            )
            if succs:
                transitions[(state, action)] = succs
    initial = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1, max_size=2, unique=True,
        )
    )
    sig = Signature(internals=frozenset(actions))
    return TableAutomaton(
        sig, initial=initial, transitions=transitions, name="random"
    )


def _reference_bfs(automaton):
    """The frozen-path reference: plain dict/set BFS, no packed stores."""
    parents = {}
    order = []
    queue = []
    for s in automaton.initial_states():
        if s not in parents:
            parents[s] = None
            order.append(s)
            queue.append(s)
    head = 0
    while head < len(queue):
        state = queue[head]
        head += 1
        for action in automaton.enabled_actions(state):
            for succ in automaton.apply(state, action):
                if succ in parents:
                    continue
                parents[succ] = (state, action)
                order.append(succ)
                queue.append(succ)
    return set(parents), parents, order


class TestFrozenEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(table_automata())
    def test_reachability_and_parents_match_reference(self, automaton):
        ref_reachable, ref_parents, _order = _reference_bfs(automaton)
        graph = state_graph(automaton)
        frontier = graph.frontier(False)
        frontier.expand_all(max_states=10_000)
        assert set(frontier.parents) == ref_reachable
        assert frontier.parents == ref_parents

    @settings(max_examples=100, deadline=None)
    @given(table_automata())
    def test_cone_matches_reference_cone(self, automaton):
        graph = state_graph(automaton)
        for start in automaton.initial_states():
            seen = set()
            stack = [start]
            while stack:
                state = stack.pop()
                if state in seen:
                    continue
                seen.add(state)
                for action in automaton.enabled_actions(state):
                    stack.extend(automaton.apply(state, action))
            assert graph.cone(start) == frozenset(seen)

    def test_transitions_view_is_frozen_states(self):
        sig = Signature(internals=frozenset({"inc"}))
        auto = TableAutomaton(
            sig, initial=[0], transitions={(0, "inc"): [1]}, name="t"
        )
        graph = state_graph(auto)
        assert graph.transitions(0) == (("inc", 1),)
        # Served from the packed row on the second ask — still states.
        assert graph.transitions(0) == (("inc", 1),)
        assert graph.hits >= 1


# ---------------------------------------------------------------------------
# Register search: packed integer checker == generic wait_free_verdict


class TestPackedRegisterSearch:
    def test_packed_checker_matches_generic_verdict_exhaustively(self):
        """Every depth<=1 candidate, classified by both engines."""
        for program in enumerate_programs(1):
            fast = _packed_verdict_kind(program, solo_bound=3)
            system = ObjectConsensusSystem(ProgramConsensus(program), 2)
            verdict = wait_free_verdict(system, solo_bound=3)
            slow = (
                "solution" if verdict.solves_consensus
                else (verdict.failure_kind or "wait_freedom")
            )
            assert fast == slow, f"{program}: packed={fast} generic={slow}"

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_packed_checker_matches_generic_on_depth_2(self, index):
        programs = list(enumerate_programs(2))
        program = programs[index % len(programs)]
        fast = _packed_verdict_kind(program, solo_bound=4)
        system = ObjectConsensusSystem(ProgramConsensus(program), 2)
        verdict = wait_free_verdict(system, solo_bound=4)
        slow = (
            "solution" if verdict.solves_consensus
            else (verdict.failure_kind or "wait_freedom")
        )
        assert fast == slow

    def test_deep_programs_defer_to_generic_engine(self):
        program = ("write", "own", ("read",
                   ("decide", "seen"), ("decide", "seen")))
        # solo_bound below the tree height forces the generic fallback.
        assert _packed_verdict_kind(program, solo_bound=1) in {
            "agreement", "validity", "wait-freedom", "solution"
        }


# ---------------------------------------------------------------------------
# Id lifetime: per-graph interners, epoch clears, no cross-automaton leaks


def _counter(limit):
    sig = Signature(internals=frozenset({"inc"}))
    transitions = {(i, "inc"): [i + 1] for i in range(limit)}
    return TableAutomaton(
        sig, initial=[0], transitions=transitions, name="counter"
    )


class TestIdLifetime:
    def test_no_cross_automaton_id_leakage(self):
        """Two graphs intern the same states to independent id spaces."""
        a, b = _counter(5), _counter(9)
        ga, gb = state_graph(a), state_graph(b)
        ga.frontier(False).expand_all(10_000)
        gb.frontier(False).expand_all(10_000)
        assert len(ga.interner) == 6
        assert len(gb.interner) == 10
        # Same state, independently interned — ids are interner-local.
        assert ga.interner.id_of(3) is not None
        assert gb.interner.id_of(3) is not None
        assert ga.interner.state_of(ga.interner.id_of(5)) == 5
        assert gb.interner.state_of(gb.interner.id_of(9)) == 9

    def test_clear_intern_table_cascades_to_graphs(self):
        auto = _counter(4)
        graph = state_graph(auto)
        graph.frontier(False).expand_all(10_000)
        assert len(graph.interner) == 5
        clear_intern_table()
        # The cascade dropped the packed state: a new interning epoch.
        assert len(graph.interner) == 0
        assert graph.stats["states_expanded"] == 0
        # And the graph still answers correctly afterwards.
        assert set(graph.frontier(False).states(10_000)) == set(range(5))

    def test_intern_table_stats_in_graph_stats(self):
        auto = _counter(3)
        graph = state_graph(auto)
        graph.frontier(False).expand_all(10_000)
        stats = graph.stats
        assert stats["states_interned"] == 4
        assert stats["packed_bytes"] > 0
        assert set(stats["intern_table"]) == {
            "size", "hits", "misses", "hit_rate"
        }
        assert intern_table_stats()["size"] >= 0


# ---------------------------------------------------------------------------
# Golden fingerprints are worker-count independent


class TestFingerprintStability:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_campaign_fingerprints_any_worker_count(self, workers):
        report = run_campaign(
            targets=[LCRRingTarget(), FloodSetCrashTarget()],
            runs=3,
            master_seed=20260807,
            workers=workers,
        )
        got = [cx.fingerprint for cx in report.counterexamples]
        serial = run_campaign(
            targets=[LCRRingTarget(), FloodSetCrashTarget()],
            runs=3,
            master_seed=20260807,
        )
        assert got == [cx.fingerprint for cx in serial.counterexamples]
        assert report.results == serial.results
