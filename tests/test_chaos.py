"""The chaos campaign engine: fuzzing, shrinking, artifacts, budgets.

The contract under test, end to end: a seeded campaign finds every
planted bug in the default roster, never flags the healthy control,
shrinks each counterexample to a 1-minimal schedule that still violates
the same property, verifies it byte-identical through replay, and saves
it as a JSONL artifact that :func:`repro.chaos.reproduce` can re-derive
from the file alone.  Everything here runs under fixed seeds — the whole
point of the engine is that these assertions are deterministic.
"""

import random

import pytest

from repro.chaos import (
    BUDGET_EXCEEDED,
    CRASH,
    PASS,
    VIOLATION,
    CampaignReport,
    ChaosTarget,
    EIGByzantineTarget,
    LCRRingTarget,
    RacyLockTarget,
    default_targets,
    reproduce,
    run_campaign,
    shrink_schedule,
    target_registry,
    write_counterexample,
)
from repro.chaos.__main__ import main as chaos_main
from repro.core.budget import Budget
from repro.core.runtime import ReplayError, derive_seed

MASTER_SEED = 0
RUNS = 40


@pytest.fixture(scope="module")
def report():
    """One full default campaign, shared by the module (seconds, not minutes)."""
    return run_campaign(runs=RUNS, master_seed=MASTER_SEED)


class TestCampaignFindsPlantedBugs:
    def test_every_planted_bug_tripped(self, report):
        counts = report.verdict_counts()
        for target in default_targets():
            if target.expect_violation:
                assert counts[target.name].get(VIOLATION, 0) > 0, (
                    f"planted bug in {target.name} never found under "
                    f"master_seed={MASTER_SEED}"
                )

    def test_healthy_control_is_clean(self, report):
        counts = report.verdict_counts()["lcr-ring"]
        assert counts == {PASS: RUNS}

    def test_campaign_passes_its_own_gate(self, report):
        assert report.failures(default_targets()) == []
        assert report.complete

    def test_no_crash_verdicts_anywhere(self, report):
        # CRASH means an exception other than the monitored violation —
        # an engine or simulator bug, not a planted one.
        assert all(r.verdict != CRASH for r in report.results)

    def test_case_seeds_are_reproduction_coordinates(self, report):
        for result in report.results:
            assert result.seed == derive_seed(
                MASTER_SEED, result.target, result.index
            )

    def test_campaign_is_deterministic(self, report):
        again = run_campaign(
            targets=[EIGByzantineTarget()], runs=10, master_seed=MASTER_SEED
        )
        expected = [
            r for r in report.results
            if r.target == "eig-n3t1-byzantine" and r.index < 10
        ]
        assert again.results == expected

    def test_summary_mentions_every_target(self, report):
        text = report.summary(default_targets())
        for target in default_targets():
            assert target.name in text


class TestShrinking:
    def test_shrunk_never_larger_and_still_violating(self, report):
        registry = target_registry()
        for cx in report.counterexamples:
            assert len(cx.shrunk) <= len(cx.atoms)
            target = registry[cx.target]
            trace = target.run(cx.shrunk, cx.seed)
            assert target.violations(trace, cx.shrunk), (
                f"shrunk schedule for {cx.target} no longer violates"
            )

    def test_shrunk_schedules_are_1_minimal(self, report):
        registry = target_registry()
        for target_name in ("eig-n3t1-byzantine", "racy-lock"):
            target = registry[target_name]
            cx = min(
                report.counterexamples_for(target_name),
                key=lambda c: len(c.shrunk),
            )
            for i in range(len(cx.shrunk)):
                candidate = cx.shrunk[:i] + cx.shrunk[i + 1:]
                trace = target.run(candidate, cx.seed)
                assert not target.violations(trace, candidate), (
                    f"{target_name}: atom {i} of the shrunk schedule is "
                    "deletable — shrinker stopped early"
                )

    def test_single_lie_defeats_eig_below_resilience(self, report):
        smallest = min(
            report.counterexamples_for("eig-n3t1-byzantine"),
            key=lambda c: len(c.shrunk),
        )
        assert len(smallest.shrunk) == 1  # n=3, t=1: one equivocation suffices

    def test_racy_lock_needs_three_schedule_atoms(self, report):
        smallest = min(
            report.counterexamples_for("racy-lock"),
            key=lambda c: len(c.shrunk),
        )
        assert len(smallest.shrunk) == 3

    def test_every_counterexample_replay_verified(self, report):
        assert report.counterexamples
        for cx in report.counterexamples:
            assert cx.replay_verified, f"{cx.target} diverged under replay"
            assert cx.trace.fingerprint() == cx.fingerprint

    def test_seed_and_schedule_rederive_fingerprint(self, report):
        registry = target_registry()
        for cx in report.counterexamples:
            fresh = registry[cx.target].run(cx.shrunk, cx.seed)
            assert fresh.fingerprint() == cx.fingerprint


class TestShrinkSchedule:
    def test_ddmin_on_a_known_predicate(self):
        atoms = tuple(range(20))

        def fails(schedule):
            return 3 in schedule and 17 in schedule

        shrunk, checks = shrink_schedule(atoms, fails)
        assert sorted(shrunk) == [3, 17]
        assert checks > 0

    def test_empty_failure_shrinks_to_nothing(self):
        shrunk, _ = shrink_schedule((1, 2, 3), lambda s: True)
        assert shrunk == ()

    def test_check_budget_never_returns_a_passing_schedule(self):
        atoms = tuple(range(32))

        def fails(schedule):
            return 31 in schedule

        shrunk, checks = shrink_schedule(atoms, fails, max_checks=3)
        assert checks <= 3
        assert fails(shrunk)

    def test_simplification_pass_runs_after_deletion(self):
        def fails(schedule):
            return bool(schedule)

        def simplify(atom):
            if atom > 0:
                yield atom - 1

        shrunk, _ = shrink_schedule((5, 9), fails, simplify_atom=simplify)
        assert shrunk == (0,)

    def test_deterministic(self):
        atoms = tuple(random.Random(7).randrange(10) for _ in range(24))

        def fails(schedule):
            return sum(schedule) >= 30

        first = shrink_schedule(atoms, fails)
        second = shrink_schedule(atoms, fails)
        assert first == second


class TestArtifacts:
    def test_write_and_reproduce_roundtrip(self, report, tmp_path):
        cx = report.counterexamples_for("eig-n3t1-byzantine")[0]
        path = write_counterexample(cx, str(tmp_path))
        fresh = reproduce(path)
        assert fresh.fingerprint() == cx.fingerprint

    def test_tampered_artifact_is_rejected(self, report, tmp_path):
        cx = report.counterexamples_for("racy-lock")[0]
        path = write_counterexample(cx, str(tmp_path))
        lines = open(path, encoding="utf-8").read().splitlines()
        del lines[2]  # drop one trace event; the header fingerprint catches it
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text("\n".join(lines) + "\n")
        with pytest.raises(ReplayError):
            reproduce(str(tampered))

    def test_unknown_schema_is_rejected(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"schema": "something-else/v9"}\n')
        with pytest.raises(ReplayError):
            reproduce(str(path))


class _ExplodingTarget(ChaosTarget):
    name = "exploding"
    substrate = "test"
    expect_violation = True

    def generate(self, rng):
        return (rng.randrange(4),)

    def run(self, atoms, seed, meter=None):
        raise RuntimeError("simulator bug")

    def monitors(self, atoms):
        return []


class TestFaultIsolationAndBudgets:
    def test_crashing_target_yields_crash_verdicts_not_abort(self):
        outcome = run_campaign(
            targets=[_ExplodingTarget(), LCRRingTarget()],
            runs=3,
            master_seed=MASTER_SEED,
        )
        counts = outcome.verdict_counts()
        assert counts["exploding"] == {CRASH: 3}
        assert counts["lcr-ring"] == {PASS: 3}
        assert any("simulator bug" in r.error for r in outcome.results)

    def test_per_run_budget_yields_budget_exceeded_verdicts(self):
        outcome = run_campaign(
            targets=[LCRRingTarget()],
            runs=3,
            master_seed=MASTER_SEED,
            per_run_budget=Budget(max_steps=5),
            shrink=False,
        )
        assert outcome.verdict_counts()["lcr-ring"] == {BUDGET_EXCEEDED: 3}
        # A healthy target preempted by its budget is not a failure.
        assert outcome.failures([LCRRingTarget()]) == []

    def test_campaign_budget_interrupts_and_resumes(self):
        roster = [LCRRingTarget(), RacyLockTarget()]
        partial = run_campaign(
            targets=roster,
            runs=6,
            master_seed=MASTER_SEED,
            shrink=False,
            budget=Budget(max_steps=4),
        )
        assert not partial.complete
        assert partial.resume_at["lcr-ring"] == 4
        assert partial.resume_at["racy-lock"] == 0
        assert len(partial.results) == 4

        finished = run_campaign(
            targets=roster,
            runs=6,
            master_seed=MASTER_SEED,
            shrink=False,
            resume=partial,
        )
        assert finished.complete
        unbudgeted = run_campaign(
            targets=roster, runs=6, master_seed=MASTER_SEED, shrink=False
        )
        assert sorted(finished.results, key=lambda r: (r.target, r.index)) == \
            sorted(unbudgeted.results, key=lambda r: (r.target, r.index))

    def test_resume_report_roundtrips_through_multiple_slices(self):
        roster = [LCRRingTarget()]
        report: CampaignReport = run_campaign(
            targets=roster,
            runs=9,
            master_seed=MASTER_SEED,
            shrink=False,
            budget=Budget(max_steps=3),
        )
        slices = 1
        while not report.complete:
            report = run_campaign(
                targets=roster,
                runs=9,
                master_seed=MASTER_SEED,
                shrink=False,
                budget=Budget(max_steps=3),
                resume=report,
            )
            slices += 1
        assert slices == 3
        assert report.verdict_counts()["lcr-ring"] == {PASS: 9}


class TestCommandLine:
    def test_healthy_target_exits_zero(self, capsys):
        code = chaos_main(
            ["--runs", "5", "--seed", "0", "--targets", "lcr-ring"]
        )
        assert code == 0
        assert "lcr-ring" in capsys.readouterr().out

    def test_unfound_planted_bug_exits_nonzero(self, capsys):
        # One run of the floodset target under this seed passes, so the
        # campaign must report the planted bug as never found.
        code = chaos_main(
            ["--runs", "1", "--seed", "0",
             "--targets", "floodset-truncated-crash", "--no-shrink"]
        )
        assert code == 1
        assert "planted bug" in capsys.readouterr().err

    def test_reproduce_flag_verifies_artifact(self, report, tmp_path, capsys):
        cx = report.counterexamples_for("eager-majority-async")[0]
        path = write_counterexample(cx, str(tmp_path))
        assert chaos_main(["--reproduce", path]) == 0
        assert "byte-identical" in capsys.readouterr().out
