"""The randomized circumvention engine under the chaos adversary.

End-to-end coverage for the PR's wiring: the three new roster targets
(honest Ben-Or, the planted biased-coin bug, the GST stall target) run
through a fixed-seed campaign; the persisted corpus re-finds both the
bug and the pre-stabilization stall; the ``benor``/``gst`` CLI
subcommands and the ``benor-run``/``gst-run`` service query kinds are
driven exactly as CI drives them.
"""

import random

import pytest

from repro.chaos import (
    BUDGET_EXCEEDED,
    PASS,
    VIOLATION,
    BenOrTarget,
    BiasedCoinBenOrTarget,
    GSTConsensusTarget,
    ScheduleCorpus,
    replay_corpus,
    run_campaign,
    stall_fingerprint,
)
from repro.chaos.generators import (
    benor_adversary,
    gst_adversary,
    random_benor_atoms,
    random_gst_atoms,
    simplify_gst_atom,
)
from repro.circumvention.__main__ import main as circumvention_main
from repro.service import (
    CertificateStore,
    QueryService,
    benor_run_key,
    gst_run_key,
)

CAMPAIGN_RUNS = 12
MASTER_SEED = 0


def _targets():
    return [BenOrTarget(), BiasedCoinBenOrTarget(), GSTConsensusTarget()]


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("randomized-corpus"))


@pytest.fixture(scope="module")
def report(corpus_dir):
    """One fixed-seed campaign over the three new targets."""
    return run_campaign(
        targets=_targets(),
        runs=CAMPAIGN_RUNS,
        master_seed=MASTER_SEED,
        corpus=corpus_dir,
    )


class TestCampaign:
    def test_honest_benor_is_clean(self, report):
        assert report.verdict_counts()["benor-consensus"] == {
            PASS: CAMPAIGN_RUNS
        }

    def test_biased_coin_bug_found_every_run(self, report):
        counts = report.verdict_counts()["benor-biased-coin-bug"]
        assert counts.get(VIOLATION, 0) == CAMPAIGN_RUNS

    def test_biased_coin_bug_shrinks_to_empty_schedule(self, report):
        """The bug needs no adversary at all: ddmin proves it by
        reducing every finding to the empty schedule."""
        found = [
            cx for cx in report.counterexamples
            if cx.target == "benor-biased-coin-bug"
        ]
        assert found
        for cx in found:
            assert cx.shrunk == ()
            assert cx.replay_verified

    def test_gst_target_stalls_never_violates(self, report):
        counts = report.verdict_counts()["gst-consensus"]
        assert counts.get(BUDGET_EXCEEDED, 0) > 0
        assert counts.get(VIOLATION, 0) == 0

    def test_campaign_passes_its_own_gate(self, report):
        assert report.failures(_targets()) == []

    def test_corpus_refinds_bug_and_stall(self, report, corpus_dir):
        """The persisted ScheduleCorpus alone re-produces both the
        planted biased-coin bug and the pre-GST stall."""
        outcome = replay_corpus(
            ScheduleCorpus(corpus_dir), targets=_targets()
        )
        assert outcome["fingerprint_mismatches"] == []
        assert "benor-biased-coin-bug" in outcome["violations_refound"]
        assert "gst-consensus" in outcome["stalls_refound"]

    def test_benor_campaign_workers_bit_identical(self):
        serial = run_campaign(
            targets=[BenOrTarget()], runs=8,
            master_seed=MASTER_SEED, workers=1,
        )
        fanned = run_campaign(
            targets=[BenOrTarget()], runs=8,
            master_seed=MASTER_SEED, workers=2,
        )
        keyed = lambda rep: [  # noqa: E731
            (r.target, r.index, r.seed, r.verdict, r.fingerprint)
            for r in rep.results
        ]
        assert keyed(serial) == keyed(fanned)


class TestStallFingerprint:
    def test_deterministic(self):
        atoms = (("gst", 5), ("delay", 2, (0, 1), 1))
        assert stall_fingerprint(atoms) == stall_fingerprint(atoms)
        assert stall_fingerprint(atoms).startswith("stall:")

    def test_distinguishes_schedules(self):
        assert stall_fingerprint((("gst", 5),)) != stall_fingerprint(
            (("gst", 6),)
        )


class TestGenerators:
    def test_benor_atoms_deterministic_and_bounded(self):
        a = random_benor_atoms(random.Random(7), n=4, t=1)
        b = random_benor_atoms(random.Random(7), n=4, t=1)
        assert a == b
        adversary = benor_adversary(a, t=1)
        assert len(adversary.crash_at) <= 1

    def test_gst_atoms_deterministic(self):
        a = random_gst_atoms(random.Random(3), n=4)
        b = random_gst_atoms(random.Random(3), n=4)
        assert a == b
        assert any(
            isinstance(x, tuple) and x[0] == "gst" for x in a
        )

    def test_gst_adversary_honours_stabilization(self):
        adversary = gst_adversary(
            (("gst", 4), ("delay", 2, (0, 1), 1)), n=4
        )
        assert not adversary.delivered(2, 0, 1)  # delayed pre-GST
        assert adversary.delivered(5, 0, 1)  # synchrony after GST

    def test_simplify_moves_toward_stabilization(self):
        assert ("gst", 2) in simplify_gst_atom(("gst", 5))
        (eased,) = simplify_gst_atom(("delay", 3, (0, 1), 4))
        assert eased == ("delay", 3, (0, 1), 1)


class TestCLI:
    def test_benor_sweep_exits_0(self, capsys):
        rc = circumvention_main(
            ["benor", "--trials", "40", "--seed", "0"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "termination" in out

    def test_benor_biased_coin_exits_2(self, capsys):
        rc = circumvention_main(
            ["benor", "--trials", "10", "--biased-coin",
             "--max-events", "300"]
        )
        assert rc == 2
        assert "STALLED" in capsys.readouterr().out

    def test_gst_decides_exits_0(self, capsys):
        rc = circumvention_main(["gst", "--gst", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "decided" in out

    def test_gst_stall_exits_2_with_receipt(self, capsys):
        rc = circumvention_main(["gst", "--gst", "8", "--stall"])
        out = capsys.readouterr().out
        assert rc == 2
        assert "STALLED" in out
        assert "steps" in out


class TestServiceKinds:
    def test_benor_run_miss_then_hit(self, tmp_path):
        service = QueryService(
            CertificateStore(str(tmp_path / "certs"))
        )
        key = benor_run_key(atoms=(3, 1, 4), seed=17)
        cold = service.resolve(key)
        assert cold.source == "live" and cold.complete
        warm = service.resolve(key)
        assert warm.source == "store"
        assert warm.result == cold.result

    def test_gst_run_miss_then_hit(self, tmp_path):
        service = QueryService(
            CertificateStore(str(tmp_path / "certs"))
        )
        key = gst_run_key(atoms=(("gst", 4),), seed=5)
        cold = service.resolve(key)
        assert cold.source == "live" and cold.complete
        warm = service.resolve(key)
        assert warm.source == "store"
        assert warm.result == cold.result
        assert cold.result["decisions"]
