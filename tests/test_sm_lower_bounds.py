"""Tests for the shared-memory lower bounds (E1, E2) and choice coordination.

The expensive exhaustive searches (thousands of candidates) live in the
benchmarks; here we run the smaller complete classes and spot-check the
searcher and the adversary.
"""

import pytest

from repro.core import ModelError
from repro.shared_memory import (
    MARK,
    RabinChoiceCoordination,
    burns_lynch_attack,
    check_candidate,
    cremers_hibbard_certificate,
    enumerate_protocol_tables,
    naive_spin_lock_system,
    search_two_process_protocols,
    symmetric_deterministic_failure,
)
from repro.shared_memory.mutex import peterson_system


class TestProtocolEnumeration:
    def test_memoryless_two_valued_class_size(self):
        # (2V)^V * V^V with V=2: 16 * 4 = 64.
        assert len(list(enumerate_protocol_tables(2, 1))) == 64

    def test_one_bit_two_valued_class_size(self):
        # (3V)^(2V) * V^V with V=2, modes=2: 6^4 * 4 = 5184.
        assert len(list(enumerate_protocol_tables(2, 2))) == 5184

    def test_tables_are_well_formed(self):
        for table in enumerate_protocol_tables(2, 1):
            for v in range(2):
                entry = table.try_entry(0, v)
                assert entry[0] in ("enter", "stay")
            assert all(w in (0, 1) for w in table.exit_table)


class TestCremersHibbard:
    """E1: two values are insufficient for fair mutual exclusion."""

    def test_symmetric_memoryless_two_values(self):
        verdicts = search_two_process_protocols(2, modes=1, symmetric=True)
        assert len(verdicts) == 64
        assert not any(v.fair_solution for v in verdicts)
        # Semaphore-like protocols do achieve mutex + progress.
        assert any(v.unfair_solution for v in verdicts)

    def test_certificate_asymmetric_memoryless(self):
        cert = cremers_hibbard_certificate(values=2, modes=1, symmetric=False)
        assert cert.candidates_checked == 64 * 64
        assert cert.details["fair_solutions"] == 0
        assert cert.details["unfair_solutions"] > 0
        cert.revalidate()

    def test_class_limit_enforced(self):
        with pytest.raises(ModelError):
            search_two_process_protocols(
                3, modes=2, symmetric=False, max_candidates=1000
            )

    def test_semaphore_candidate_is_classified_unfair(self):
        """Hand-build the 2-valued semaphore inside the searched class and
        confirm the checker classifies it exactly as the paper says."""
        from repro.shared_memory.lower_bounds import ProtocolTable

        semaphore = ProtocolTable(
            values=2,
            modes=1,
            # v==0 (free): enter writing 1.  v==1 (held): spin, rewrite 1.
            try_table=(("enter", 1), ("stay", 0, 1)),
            # exit: always write 0.
            exit_table=(0, 0),
        )
        verdict = check_candidate((semaphore, semaphore))
        assert verdict.mutual_exclusion
        assert verdict.deadlock_free
        assert not verdict.lockout_free


class TestBurnsLynchAttack:
    """E2: one read/write register cannot support 2-process mutex."""

    def test_defeats_naive_spin_lock(self):
        cert = burns_lynch_attack(naive_spin_lock_system())
        assert "mutual exclusion" in cert.claim
        cert.revalidate()
        execution = cert.evidence
        system = execution.automaton
        assert len(system.critical_processes(execution.last_state)) == 2

    def test_rejects_multi_register_algorithms(self):
        """Peterson uses three registers: outside the theorem's hypotheses,
        so the adversary must refuse rather than report nonsense."""
        with pytest.raises(ModelError):
            burns_lynch_attack(peterson_system())

    def test_rejects_non_register_operations(self):
        from repro.shared_memory.mutex import tas_semaphore_system

        with pytest.raises(ModelError):
            burns_lynch_attack(tas_semaphore_system(2))


class TestChoiceCoordination:
    def test_symmetric_deterministic_protocol_fails(self):
        """A natural deterministic protocol: mark if the variable is empty,
        otherwise defer to the other variable.  The mirrored execution
        never produces exactly one marker."""

        def step(local, value):
            if value == "empty":
                if local == "scouting":
                    # First visit: leave a claim, go inspect the other one.
                    return "claimed", "claimed", 1, False
                return local, MARK, 0, True
            if value == "claimed":
                # Someone (possibly me) claimed here; mark the other one.
                return local, value, 1, False
            return local, value, 1, True

        cert = symmetric_deterministic_failure(
            step, initial_local="scouting", initial_value="empty",
            max_steps=100,
        )
        assert cert.details["markers"] != 1

    def test_rabin_randomized_succeeds(self):
        successes = 0
        for seed in range(10):
            algo = RabinChoiceCoordination(n_processes=3, seed=seed)
            if algo.run(scheduler_seed=seed + 100):
                successes += 1
        assert successes == 10

    def test_rabin_exactly_one_marker(self):
        algo = RabinChoiceCoordination(n_processes=4, seed=42)
        assert algo.run(scheduler_seed=1)
        assert algo.marker_count == 1

    def test_rabin_needs_two_processes(self):
        with pytest.raises(ValueError):
            RabinChoiceCoordination(n_processes=1)
