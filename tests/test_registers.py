"""Tests for register constructions: regular-register boundary, snapshots."""

import pytest

from repro.registers import (
    RegisterSpace,
    ScheduledOp,
    SnapshotObject,
    check_register_history,
    check_seq_register_history,
    check_snapshot_history,
    initial_registers,
    inversion_history,
    run_concurrent,
    single_reader_histories,
    two_reader_failure,
)
from repro.registers.regular import REG, raw_read, raw_write


class TestHarness:
    def test_atomic_sequential(self):
        space = RegisterSpace({REG: 0}, semantics="atomic")
        ops = [
            ScheduledOp("w", "write", 7, raw_write),
            ScheduledOp("r", "read", None, raw_read),
        ]
        history = run_concurrent(space, ops, schedule=["w", "w", "r", "r"])
        assert check_register_history(history, initial=0) is not None
        read_op = next(o for o in history if o.kind == "read")
        assert read_op.result == 7

    def test_atomic_histories_always_linearizable(self):
        """Atomic base registers can never produce a non-linearizable
        single-register history, whatever the interleaving."""
        for seed in range(25):
            space = RegisterSpace({REG: 0}, semantics="atomic", seed=seed)
            ops = [
                ScheduledOp("w", "write", 1, raw_write),
                ScheduledOp("w", "write", 2, raw_write),
                ScheduledOp("a", "read", None, raw_read),
                ScheduledOp("b", "read", None, raw_read),
            ]
            history = run_concurrent(space, ops, seed=seed)
            assert check_register_history(history, initial=0) is not None

    def test_same_process_ops_run_in_order(self):
        space = RegisterSpace({REG: 0}, semantics="atomic")
        ops = [
            ScheduledOp("w", "write", 1, raw_write),
            ScheduledOp("w", "write", 2, raw_write),
        ]
        run_concurrent(space, ops, seed=3)
        assert space.values[REG] == 2


class TestRegularBoundary:
    """Lamport's regular/atomic boundary (E11's register side)."""

    def test_regular_register_admits_inversion(self):
        history = inversion_history()
        assert check_register_history(history, initial=0) is None

    def test_single_reader_construction_is_atomic(self):
        """Sequence numbers + one reader's local monotonicity restore
        linearizability over adversarial schedules."""
        for history in single_reader_histories(seeds=range(30)):
            assert check_seq_register_history(history) is not None

    def test_two_readers_without_writing_fail(self):
        """The same construction with two non-writing readers is defeated:
        Lamport's 'unless the readers write'."""
        history = two_reader_failure()
        assert check_seq_register_history(history) is None


class TestSnapshot:
    def test_sequential_update_then_scan(self):
        n = 3
        obj = SnapshotObject(n)
        space = RegisterSpace(initial_registers(n))
        ops = [
            obj.update_op("p0", 0, "a"),
            obj.scan_op("p1"),
        ]
        history = run_concurrent(
            space, ops, schedule=["p0"] * 50 + ["p1"] * 50
        )
        scan = next(o for o in history if o.kind == "scan")
        assert scan.result == ("a", None, None)

    @pytest.mark.parametrize("seed", range(20))
    def test_concurrent_histories_linearizable(self, seed):
        n = 3
        obj = SnapshotObject(n)
        space = RegisterSpace(initial_registers(n))
        ops = [
            obj.update_op("p0", 0, f"x{seed}"),
            obj.update_op("p0", 0, "x2"),
            obj.update_op("p1", 1, "y"),
            obj.scan_op("p2"),
            obj.scan_op("p2"),
        ]
        history = run_concurrent(space, ops, seed=seed)
        assert check_snapshot_history(history, n) is not None

    @pytest.mark.parametrize("seed", range(10))
    def test_heavier_concurrency(self, seed):
        n = 4
        obj = SnapshotObject(n)
        space = RegisterSpace(initial_registers(n))
        ops = []
        for p in range(3):
            ops.append(obj.update_op(f"p{p}", p, f"v{p}.1"))
            ops.append(obj.update_op(f"p{p}", p, f"v{p}.2"))
        ops.append(obj.scan_op("p3"))
        ops.append(obj.scan_op("p3"))
        history = run_concurrent(space, ops, seed=seed + 100)
        assert check_snapshot_history(history, n) is not None

    def test_scans_are_wait_free_bounded(self):
        """A scan completes within O(n) collects even under contention —
        the embedded-scan borrow is exercised by a scripted schedule that
        makes the same updater move twice mid-scan."""
        n = 2
        obj = SnapshotObject(n)
        space = RegisterSpace(initial_registers(n))
        ops = [
            obj.update_op("u", 0, "a"),
            obj.update_op("u", 0, "b"),
            obj.scan_op("s"),
        ]
        # Interleave: scanner collects; updater completes one update;
        # scanner collects (sees change); updater completes another;
        # scanner must then borrow the embedded scan and terminate.
        schedule = (
            ["s", "s"]            # first collect (2 reads)
            + ["u"] * 20          # update #1 completes
            + ["s", "s"]          # second collect — change detected
            + ["u"] * 20          # update #2 completes
            + ["s"] * 20          # scanner finishes, borrowing if needed
        )
        history = run_concurrent(space, ops, schedule=schedule)
        assert check_snapshot_history(history, n) is not None
        scan = next(o for o in history if o.kind == "scan")
        assert scan.result is not None
