"""The certificate store's integrity contract: verify or miss.

Three layers under test.  :mod:`repro.service.keys`: canonical request
fingerprints are stable across construction order and container flavor,
and the tagged value encoding round-trips the frozen vocabulary exactly.
:mod:`repro.service.store`: every flavor of damage — truncation, garbage,
a bit-flipped result, an entry filed under the wrong key — degrades to a
counted miss, never a wrong answer, and concurrent/interrupted writers
converge through atomic replace.  :mod:`repro.service.graphs`: a
:class:`StateGraph` round-tripped through a store blob is bit-identical
to the graph that was saved and explores entirely from cache (hypothesis
over randomly generated small automata).
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Signature, TableAutomaton
from repro.core.freeze import frozendict, intern_frozen
from repro.core.runtime import FingerprintMismatch
from repro.core.stategraph import StateGraph
from repro.service.graphs import (
    graph_blob_key,
    pack_state_graph,
    persist_state_graph,
    unpack_state_graph,
    warm_state_graph,
)
from repro.service.keys import (
    QueryKey,
    canonical_json,
    decode_canonical,
    encode_canonical,
    payload_fingerprint,
)
from repro.service.store import CertificateStore


# ---------------------------------------------------------------------------
# Canonical keys
# ---------------------------------------------------------------------------


class TestQueryKeys:
    def test_kwarg_order_does_not_change_the_fingerprint(self):
        a = QueryKey.make("flp-analysis", protocol="quorum-vote", n=3)
        b = QueryKey.make("flp-analysis", n=3, protocol="quorum-vote")
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_container_flavor_does_not_change_the_fingerprint(self):
        a = QueryKey.make("q", inputs=(0, 1, 1), opts={"x": 1})
        b = QueryKey.make("q", inputs=[0, 1, 1], opts=frozendict({"x": 1}))
        assert a.fingerprint() == b.fingerprint()

    def test_different_params_different_fingerprints(self):
        a = QueryKey.make("register-search", depth=1)
        b = QueryKey.make("register-search", depth=2)
        c = QueryKey.make("valency", depth=1)
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_describe_round_trip(self):
        key = QueryKey.make(
            "q", inputs=(0, 1), tags=frozenset({"a", "b"}), n=3, label=None
        )
        rebuilt = QueryKey.from_description(key.describe())
        assert rebuilt == key
        assert rebuilt.fingerprint() == key.fingerprint()
        # The description itself is JSON-native.
        json.dumps(key.describe())

    def test_params_decode_back_to_frozen_values(self):
        key = QueryKey.make("q", inputs=(0, (1, 2)), tags=frozenset({7}))
        assert key.param("inputs") == (0, (1, 2))
        assert key.param("tags") == frozenset({7})
        assert key.param("absent", default="d") == "d"
        assert key.params_dict() == {
            "inputs": (0, (1, 2)),
            "tags": frozenset({7}),
        }

    def test_unencodable_param_fails_loudly(self):
        with pytest.raises(TypeError):
            QueryKey.make("q", bad=object())

    def test_canonical_round_trip_interns(self):
        value = intern_frozen(
            (frozendict({"a": (1, 2), "b": frozenset({3})}), "tail")
        )
        decoded = decode_canonical(
            json.loads(canonical_json(encode_canonical(value)))
        )
        assert decoded == value
        assert decoded is intern_frozen(value)

    def test_payload_fingerprint_is_order_insensitive(self):
        assert payload_fingerprint({"a": 1, "b": 2}) == payload_fingerprint(
            {"b": 2, "a": 1}
        )


# ---------------------------------------------------------------------------
# Store entries: verify or miss
# ---------------------------------------------------------------------------


@pytest.fixture
def store(tmp_path):
    return CertificateStore(str(tmp_path / "certs"))


KEY = QueryKey.make("register-search", depth=1)
RESULT = {"candidates": 32, "solutions": [], "agreement_failures": 5}


class TestStoreIntegrity:
    def test_put_get_round_trip(self, store):
        path = store.put(KEY, RESULT)
        assert os.path.exists(path)
        assert store.get(KEY) == RESULT
        assert store.stats == {"hits": 1, "misses": 0, "corrupt": 0, "puts": 1}

    def test_absent_entry_is_a_clean_miss(self, store):
        assert store.get(KEY) is None
        assert store.stats["misses"] == 1
        assert store.stats["corrupt"] == 0

    def test_truncated_entry_is_a_corrupt_miss(self, store):
        path = store.put(KEY, RESULT)
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text[: len(text) // 2])
        assert store.get(KEY) is None
        assert store.stats["corrupt"] == 1

    def test_garbage_entry_is_a_corrupt_miss(self, store):
        path = store.put(KEY, RESULT)
        with open(path, "wb") as handle:
            handle.write(b"\x00\xffnot json at all")
        assert store.get(KEY) is None
        assert store.stats["corrupt"] == 1

    def test_tampered_result_is_a_corrupt_miss(self, store):
        path = store.put(KEY, RESULT)
        with open(path, encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["result"]["candidates"] = 9999  # digest now stale
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert store.get(KEY) is None
        assert store.stats["corrupt"] == 1

    def test_entry_filed_under_the_wrong_key_is_a_miss(self, store):
        other = QueryKey.make("register-search", depth=2)
        source = store.put(other, RESULT)
        # Simulate a stale/renamed file: other's entry under KEY's name.
        target = store._object_path(KEY.fingerprint())
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.replace(source, target)
        assert store.get(KEY) is None
        assert store.stats["corrupt"] == 1

    def test_wrong_schema_is_a_corrupt_miss(self, store):
        path = store.put(KEY, RESULT)
        with open(path, encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["schema"] = "someone-elses-format/v9"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert store.get(KEY) is None
        assert store.stats["corrupt"] == 1

    def test_concurrent_writers_converge_byte_identically(self, tmp_path):
        # Two independent store handles (two processes, in effect)
        # writing the same deterministic result land the same bytes:
        # whichever atomic replace happens last changes nothing.
        root = str(tmp_path / "shared")
        first = CertificateStore(root)
        second = CertificateStore(root)
        path_a = first.put(KEY, RESULT)
        with open(path_a, "rb") as handle:
            bytes_a = handle.read()
        path_b = second.put(KEY, RESULT)
        with open(path_b, "rb") as handle:
            bytes_b = handle.read()
        assert path_a == path_b
        assert bytes_a == bytes_b
        assert first.get(KEY) == RESULT
        assert second.get(KEY) == RESULT

    def test_interrupted_writer_preserves_the_previous_entry(
        self, store, monkeypatch
    ):
        from tests.test_atomic_artifacts import _Boom, _interrupt_write

        store.put(KEY, RESULT)
        _interrupt_write(monkeypatch)
        with pytest.raises(_Boom):
            store.put(KEY, {"candidates": 1})
        monkeypatch.undo()
        assert store.get(KEY) == RESULT

    def test_entries_lists_both_object_classes(self, store):
        store.put(KEY, RESULT)
        store.put_blob(QueryKey.make("state-graph", automaton="c"), b"body")
        listed = list(store.entries())
        assert ("object", KEY.fingerprint()) in listed
        kinds = [kind for kind, _fp in listed]
        assert kinds.count("object") == 1 and kinds.count("graph") == 1


class TestBlobIntegrity:
    def test_blob_round_trip(self, store):
        key = QueryKey.make("state-graph", automaton="counter")
        body = bytes(range(256)) * 3
        store.put_blob(key, body)
        assert store.get_blob(key) == body

    def test_bit_flip_in_body_is_a_corrupt_miss(self, store):
        key = QueryKey.make("state-graph", automaton="counter")
        store.put_blob(key, b"the packed graph body")
        path = store._blob_path(key.fingerprint())
        with open(path, "rb") as handle:
            raw = bytearray(handle.read())
        raw[-3] ^= 0x40
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        assert store.get_blob(key) is None
        assert store.stats["corrupt"] == 1

    def test_truncated_blob_is_a_corrupt_miss(self, store):
        key = QueryKey.make("state-graph", automaton="counter")
        store.put_blob(key, b"the packed graph body")
        path = store._blob_path(key.fingerprint())
        with open(path, "rb") as handle:
            raw = handle.read()
        with open(path, "wb") as handle:
            handle.write(raw[:-5])
        assert store.get_blob(key) is None
        assert store.stats["corrupt"] == 1

    def test_blob_under_the_wrong_key_is_a_miss(self, store):
        key_a = QueryKey.make("state-graph", automaton="a")
        key_b = QueryKey.make("state-graph", automaton="b")
        store.put_blob(key_a, b"graph of a")
        os.makedirs(
            os.path.dirname(store._blob_path(key_b.fingerprint())),
            exist_ok=True,
        )
        os.replace(
            store._blob_path(key_a.fingerprint()),
            store._blob_path(key_b.fingerprint()),
        )
        assert store.get_blob(key_b) is None
        assert store.stats["corrupt"] == 1


# ---------------------------------------------------------------------------
# Graph persistence: warm == cold, bit for bit
# ---------------------------------------------------------------------------


def _counter_automaton(limit):
    sig = Signature(internals=frozenset({"inc"}))
    transitions = {(i, "inc"): [i + 1] for i in range(limit)}
    return TableAutomaton(
        sig, initial=[0], transitions=transitions, name="counter"
    )


def _table_automaton(n_states, edges):
    """A small automaton over states 0..n-1 from hypothesis-drawn edges."""
    sig = Signature(internals=frozenset({"a", "b"}))
    transitions = {}
    for (state, action), succs in edges.items():
        transitions[(state % n_states, action)] = [
            succ % n_states for succ in succs
        ]
    return TableAutomaton(
        sig, initial=[0], transitions=transitions, name=f"rand-{n_states}"
    )


class TestGraphRoundTrip:
    def test_counter_round_trip_zero_misses(self, store):
        cold_auto = _counter_automaton(40)
        cold = StateGraph(cold_auto)
        cold_states = cold.reachable()
        key = graph_blob_key("counter", limit=40)
        persist_state_graph(store, key, cold)

        warm_auto = _counter_automaton(40)
        graph, warmed = warm_state_graph(store, key, warm_auto)
        assert warmed
        assert graph.reachable() == cold_states
        # Every expansion the warm run needed was already a row: the
        # zero-live-search receipt.
        assert graph.stats["misses"] == 0
        assert graph.stats["hits"] > 0

    def test_round_trip_blob_is_bit_identical(self, store):
        cold = StateGraph(_counter_automaton(25))
        cold.reachable()
        blob = pack_state_graph(cold)
        fresh = StateGraph(_counter_automaton(25))
        unpack_state_graph(fresh, blob)
        assert pack_state_graph(fresh) == blob

    def test_unpack_needs_a_fresh_graph(self):
        cold = StateGraph(_counter_automaton(5))
        cold.reachable()
        blob = pack_state_graph(cold)
        dirty = StateGraph(_counter_automaton(5))
        dirty.reachable()
        with pytest.raises(ValueError):
            unpack_state_graph(dirty, blob)

    def test_corrupt_blob_falls_back_to_cold_exploration(self, store):
        cold = StateGraph(_counter_automaton(12))
        expected = cold.reachable()
        key = graph_blob_key("counter", limit=12)
        persist_state_graph(store, key, cold)
        path = store._blob_path(key.fingerprint())
        with open(path, "rb") as handle:
            raw = bytearray(handle.read())
        raw[len(raw) // 2] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(bytes(raw))

        graph, warmed = warm_state_graph(
            store, key, _counter_automaton(12)
        )
        assert not warmed
        assert store.stats["corrupt"] == 1
        # Live exploration still produces the right answer.
        assert graph.reachable() == expected

    def test_frozen_container_states_round_trip(self, store):
        # States carrying frozendicts exercise the {"fd": ...} tag.
        sig = Signature(internals=frozenset({"step"}))
        s0 = intern_frozen(frozendict({"phase": 0, "seen": ()}))
        s1 = intern_frozen(frozendict({"phase": 1, "seen": (0,)}))
        s2 = intern_frozen(frozendict({"phase": 2, "seen": (0, 1)}))
        transitions = {(s0, "step"): [s1], (s1, "step"): [s2]}
        auto = TableAutomaton(
            sig, initial=[s0], transitions=transitions, name="fd"
        )
        cold = StateGraph(auto)
        cold_states = cold.reachable()
        blob = pack_state_graph(cold)
        fresh = StateGraph(
            TableAutomaton(
                sig, initial=[s0], transitions=transitions, name="fd"
            )
        )
        unpack_state_graph(fresh, blob)
        warm_states = fresh.reachable()
        assert warm_states == cold_states
        assert fresh.stats["misses"] == 0
        # Decoded states are the interned instances, not lookalikes.
        assert all(s is intern_frozen(s) for s in warm_states)

    @settings(max_examples=25, deadline=None)
    @given(
        n_states=st.integers(min_value=1, max_value=5),
        edges=st.dictionaries(
            keys=st.tuples(
                st.integers(min_value=0, max_value=4),
                st.sampled_from(["a", "b"]),
            ),
            values=st.lists(
                st.integers(min_value=0, max_value=4), min_size=1, max_size=3
            ),
            max_size=8,
        ),
    )
    def test_random_automata_round_trip_bit_identically(
        self, n_states, edges
    ):
        cold = StateGraph(_table_automaton(n_states, edges))
        cold_states = cold.reachable()
        blob = pack_state_graph(cold)

        warm = StateGraph(_table_automaton(n_states, edges))
        unpack_state_graph(warm, blob)
        assert warm.reachable() == cold_states
        assert warm.stats["misses"] == 0
        assert pack_state_graph(warm) == blob

    def test_mismatch_error_reused_for_store_verification(self, store):
        # The structured FingerprintMismatch from Trace.from_jsonl is the
        # same error type the store's verifiers raise internally.
        store.put(KEY, RESULT)
        path = store._object_path(KEY.fingerprint())
        with open(path, encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["result"]["candidates"] = 1
        with pytest.raises(FingerprintMismatch) as info:
            store._verify_entry(entry, KEY)
        assert "store entry result" in info.value.context
        assert info.value.expected != info.value.actual
