"""Tests for state-space exploration, invariants and reachability."""

import pytest

from repro.core import (
    InvariantViolation,
    SearchBudgetExceeded,
    Signature,
    TableAutomaton,
    assert_invariant,
    can_reach_from,
    check_invariant,
    explore,
    find_state,
    reachable_states_satisfying,
)


def counter(limit=5):
    sig = Signature(internals=frozenset({"inc"}))
    transitions = {(i, "inc"): [i + 1] for i in range(limit)}
    return TableAutomaton(sig, initial=[0], transitions=transitions, name="counter")


def branching():
    """0 -> {1, 2}; 1 -> 3; 2 -> 4."""
    sig = Signature(internals=frozenset({"a", "b"}))
    return TableAutomaton(
        sig,
        initial=[0],
        transitions={
            (0, "a"): [1],
            (0, "b"): [2],
            (1, "a"): [3],
            (2, "a"): [4],
        },
        name="branching",
    )


class TestExplore:
    def test_reaches_all_states(self):
        result = explore(counter(5))
        assert result.reachable == set(range(6))

    def test_path_reconstruction(self):
        result = explore(counter(5))
        path = result.path_to(3)
        assert path.states == (0, 1, 2, 3)
        assert path.actions == ("inc", "inc", "inc")

    def test_budget_enforced(self):
        with pytest.raises(SearchBudgetExceeded):
            explore(counter(100), max_states=10)

    def test_input_exploration_toggle(self):
        sig = Signature(inputs=frozenset({"kick"}))
        auto = TableAutomaton(
            sig, initial=[0], transitions={(0, "kick"): [1]}, name="kickable"
        )
        assert explore(auto).reachable == {0}
        assert explore(auto, include_inputs=True).reachable == {0, 1}


class TestInvariants:
    def test_holding_invariant_returns_none(self):
        assert check_invariant(counter(5), lambda s: s <= 5) is None

    def test_violation_returns_shortest_counterexample(self):
        witness = check_invariant(counter(5), lambda s: s < 3)
        assert witness is not None
        assert witness.last_state == 3
        assert len(witness) == 3

    def test_violated_initial_state_detected(self):
        witness = check_invariant(counter(5), lambda s: s != 0)
        assert witness is not None
        assert len(witness) == 0

    def test_assert_invariant_raises_with_witness(self):
        with pytest.raises(InvariantViolation) as excinfo:
            assert_invariant(counter(5), lambda s: s < 3, "counter stays small")
        assert excinfo.value.witness is not None

    def test_assert_invariant_returns_state_count(self):
        assert assert_invariant(counter(5), lambda s: True, "trivial") == 6


class TestSearchHelpers:
    def test_find_state(self):
        path = find_state(branching(), lambda s: s == 4)
        assert path is not None
        assert path.last_state == 4

    def test_find_state_unreachable(self):
        assert find_state(branching(), lambda s: s == 99) is None

    def test_reachable_states_satisfying(self):
        odd = reachable_states_satisfying(counter(5), lambda s: s % 2 == 1)
        assert sorted(odd) == [1, 3, 5]

    def test_can_reach_from(self):
        auto = branching()
        assert can_reach_from(auto, 1, lambda s: s == 3)
        assert not can_reach_from(auto, 1, lambda s: s == 4)
