"""Tests for views, indistinguishability and chains."""

import pytest

from repro.core import (
    Execution,
    IndistinguishabilityChain,
    Signature,
    TableAutomaton,
    ViewExtractor,
    decisions_constant_along_chain,
)


def two_party_automaton():
    """Two counters; action ('inc', i) belongs to party i."""
    sig = Signature(internals=frozenset({("inc", 0), ("inc", 1)}))
    transitions = {}
    for a in range(5):
        for b in range(5):
            if a < 4:
                transitions[((a, b), ("inc", 0))] = [(a + 1, b)]
            if b < 4:
                transitions[((a, b), ("inc", 1))] = [(a, b + 1)]
    return TableAutomaton(sig, initial=[(0, 0)], transitions=transitions,
                          name="two-party")


def extractor():
    return ViewExtractor(
        local_state=lambda state, who: state[who],
        participates=lambda action, who: action == ("inc", who),
    )


class TestViews:
    def test_view_records_own_steps_only(self):
        auto = two_party_automaton()
        e = Execution.run(auto, [("inc", 0), ("inc", 1), ("inc", 0)])
        view0 = extractor().view(e, 0)
        assert view0.local_states == (0, 1, 2)
        assert view0.observed_actions == (("inc", 0), ("inc", 0))

    def test_indistinguishable_when_other_party_varies(self):
        auto = two_party_automaton()
        ext = extractor()
        e1 = Execution.run(auto, [("inc", 0), ("inc", 1)])
        e2 = Execution.run(auto, [("inc", 1), ("inc", 0)])
        # Party 0 took one step in each and saw the same local states.
        assert ext.indistinguishable(e1, e2, 0)
        assert ext.indistinguishable(e1, e2, 1)

    def test_distinguishable_when_own_history_differs(self):
        auto = two_party_automaton()
        ext = extractor()
        e1 = Execution.run(auto, [("inc", 0)])
        e2 = Execution.run(auto, [("inc", 0), ("inc", 0)])
        assert not ext.indistinguishable(e1, e2, 0)
        assert ext.indistinguishable(e1, e2, 1)

    def test_distinguishing_observers(self):
        auto = two_party_automaton()
        ext = extractor()
        e1 = Execution.run(auto, [("inc", 0)])
        e2 = Execution.run(auto, [("inc", 1)])
        assert ext.distinguishing_observers(e1, e2, [0, 1]) == [0, 1]


class TestChains:
    def test_chain_length_validation(self):
        auto = two_party_automaton()
        e = Execution.run(auto, [("inc", 0)])
        with pytest.raises(ValueError):
            IndistinguishabilityChain(executions=(e, e), links=())

    def test_valid_chain_passes_validation(self):
        auto = two_party_automaton()
        ext = extractor()
        e1 = Execution.run(auto, [("inc", 0), ("inc", 1)])
        e2 = Execution.run(auto, [("inc", 1), ("inc", 0)])
        chain = IndistinguishabilityChain(executions=(e1, e2), links=(0,))
        chain.validate(ext)

    def test_broken_chain_detected(self):
        auto = two_party_automaton()
        ext = extractor()
        e1 = Execution.run(auto, [("inc", 0)])
        e2 = Execution.run(auto, [("inc", 0), ("inc", 0)])
        chain = IndistinguishabilityChain(executions=(e1, e2), links=(0,))
        with pytest.raises(AssertionError):
            chain.validate(ext)

    def test_decisions_constant_along_chain(self):
        auto = two_party_automaton()
        e1 = Execution.run(auto, [("inc", 0), ("inc", 1)])
        e2 = Execution.run(auto, [("inc", 1), ("inc", 0)])
        chain = IndistinguishabilityChain(executions=(e1, e2), links=(0,))
        # A "decision" that depends only on the observer's view: constant.
        assert decisions_constant_along_chain(
            chain, decision_of=lambda e, obs: e.last_state[obs]
        )
        # A decision that differs across the link: not constant.
        assert not decisions_constant_along_chain(
            chain, decision_of=lambda e, obs: e.actions[0]
        )
