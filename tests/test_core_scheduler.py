"""Tests for schedulers: fairness, reproducibility, replay."""

import pytest

from repro.core import (
    ExecutionError,
    FixedScheduler,
    GreedyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Signature,
    TableAutomaton,
)


def two_clocks():
    """Two independent ticking clocks; fairness should advance both."""
    sig = Signature(internals=frozenset({("tick", 0), ("tick", 1)}))
    transitions = {}
    for a in range(10):
        for b in range(10):
            if a < 9:
                transitions[((a, b), ("tick", 0))] = [(a + 1, b)]
            if b < 9:
                transitions[((a, b), ("tick", 1))] = [(a, b + 1)]
    return TableAutomaton(
        sig,
        initial=[(0, 0)],
        transitions=transitions,
        tasks=[{("tick", 0)}, {("tick", 1)}],
        name="two-clocks",
    )


class TestRoundRobin:
    def test_advances_every_task(self):
        auto = two_clocks()
        execution = RoundRobinScheduler(auto).run(auto, max_steps=10)
        a, b = execution.last_state
        assert a == 5 and b == 5  # perfectly alternating

    def test_skips_disabled_tasks(self):
        auto = two_clocks()
        sched = RoundRobinScheduler(auto)
        execution = sched.run(auto, max_steps=30)
        assert execution.last_state == (9, 9)  # both run to completion

    def test_stop_when(self):
        auto = two_clocks()
        execution = RoundRobinScheduler(auto).run(
            auto, max_steps=100, stop_when=lambda s: s[0] >= 3
        )
        assert execution.last_state[0] == 3


class TestRandomScheduler:
    def test_same_seed_same_run(self):
        auto = two_clocks()
        e1 = RandomScheduler(seed=7).run(auto, max_steps=12)
        e2 = RandomScheduler(seed=7).run(auto, max_steps=12)
        assert e1.actions == e2.actions

    def test_different_seeds_usually_differ(self):
        auto = two_clocks()
        runs = {
            RandomScheduler(seed=s).run(auto, max_steps=12).actions
            for s in range(8)
        }
        assert len(runs) > 1


class TestGreedyScheduler:
    def test_maximizes_score(self):
        auto = two_clocks()
        # Adversary that always advances clock 0.
        adversary = GreedyScheduler(
            lambda execution, action: 1.0 if action == ("tick", 0) else 0.0
        )
        execution = adversary.run(auto, max_steps=9)
        assert execution.last_state == (9, 0)


class TestFixedScheduler:
    def test_replays_schedule(self):
        auto = two_clocks()
        schedule = [("tick", 1), ("tick", 1), ("tick", 0)]
        execution = FixedScheduler(schedule).run(auto, max_steps=3)
        assert execution.last_state == (1, 2)

    def test_rejects_disabled_action(self):
        auto = two_clocks()
        sig = [("tick", 0)] * 10  # clock 0 saturates at 9
        with pytest.raises(ExecutionError):
            FixedScheduler(sig).run(auto, max_steps=10)

    def test_exhausted_schedule_raises(self):
        auto = two_clocks()
        with pytest.raises(ExecutionError):
            FixedScheduler([("tick", 0)]).run(auto, max_steps=5)
