"""The unified simulation runtime: one trace schema, one adversary
interface, seeded determinism across every model.

The contract under test: every substrate emits the same
:class:`~repro.core.runtime.TraceEvent` record schema, every run is a
deterministic function of ``(protocol, inputs, adversary, seed)``, and
:func:`~repro.core.runtime.replay` re-executes a trace and verifies the
re-run is byte-identical.
"""

import pytest

from repro.asynchronous.flp import QuorumVote
from repro.asynchronous.network import AsyncConsensusSystem
from repro.consensus.floodset import FloodSet
from repro.consensus.synchronous import (
    CrashAdversary,
    SyncAdversary,
    run_synchronous,
)
from repro.core.runtime import (
    DECIDE,
    DECLARE,
    DELIVER,
    EVENT_KINDS,
    SEND,
    STEP,
    FaultAdversary,
    ReplayError,
    SimulationRuntime,
    Trace,
    TraceEvent,
    derive_seed,
    replay,
    spawn_rng,
)
from repro.core.scheduler import RandomScheduler
from repro.datalink.protocols import AlternatingBitReceiver, AlternatingBitSender
from repro.datalink.simulate import FairLossyScheduler, run_datalink
from repro.rings import (
    MaxTokenProtocol,
    itai_rodeh_election,
    lcr_election,
    run_lockstep,
)
from repro.shared_memory import run_system
from repro.shared_memory.mutex import peterson_system


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------


class TestTraceEventSchema:
    def test_fields(self):
        event = TraceEvent(step=3, actor="p1", kind=SEND, payload=("x",), round=2)
        assert event.step == 3
        assert event.actor == "p1"
        assert event.kind == SEND
        assert event.payload == ("x",)
        assert event.round == 2
        assert event.time is None

    def test_key_is_plain_tuple(self):
        event = TraceEvent(0, "a", DELIVER)
        assert event.key() == (0, "a", DELIVER, None, None, None)

    def test_kinds_are_closed_vocabulary(self):
        assert {SEND, DELIVER, DECIDE, DECLARE, STEP} <= EVENT_KINDS

    def test_trace_accessors(self):
        runtime = SimulationRuntime(substrate="s", protocol="p", seed=1)
        runtime.emit(SEND, "a", "m1")
        runtime.emit(DELIVER, "b", "m1")
        runtime.emit(DECIDE, "b", 1)
        trace = runtime.finish(outcome={"decided": 1})
        assert trace.steps == 3
        assert trace.messages_sent == 1
        assert trace.messages_delivered == 1
        assert [e.kind for e in trace.events_of(SEND, DELIVER)] == [SEND, DELIVER]
        assert [e.actor for e in trace.view("b")] == ["b", "b"]
        assert trace.outcome_dict() == {"decided": 1}


class TestDerivedSeeds:
    def test_stable_across_processes(self):
        # sha256-based: must not depend on PYTHONHASHSEED.
        assert derive_seed(0, "itai-rodeh", 1) == derive_seed(0, "itai-rodeh", 1)
        assert derive_seed("a", 1) != derive_seed("a", 2)

    def test_nonnegative_63_bit(self):
        for args in [(0,), ("x", 3), (1, 2, 3)]:
            seed = derive_seed(*args)
            assert 0 <= seed < 2**63

    def test_spawn_rng_decorrelates(self):
        import random

        parent = random.Random(7)
        child_a = spawn_rng(parent)
        child_b = spawn_rng(parent)
        assert child_a.random() != child_b.random()


class TestFaultAdversaryDefaults:
    def test_no_powers_by_default(self):
        adversary = FaultAdversary()
        assert not adversary.is_faulty("p")
        assert adversary.transform(1, 0, 1, "msg") == "msg"

    def test_schedule_uses_rng_when_available(self):
        import random

        adversary = FaultAdversary()
        picks = {adversary.schedule(["a", "b", "c"], random.Random(s)) for s in range(20)}
        assert picks == {0, 1, 2}
        assert adversary.schedule(["a", "b", "c"], None) == 0


# ---------------------------------------------------------------------------
# Determinism: same (protocol, inputs, adversary, seed) => identical trace
# ---------------------------------------------------------------------------


def _sync_run(record=True):
    adversary = CrashAdversary({0: (1, (2,))})
    return run_synchronous(
        FloodSet(), [0, 1, 1, 0], adversary=adversary, t=1, record_trace=record
    )


class TestDeterminism:
    def test_synchronous(self):
        a, b = _sync_run().trace, _sync_run().trace
        assert a.events == b.events
        assert a.fingerprint() == b.fingerprint()
        assert a.canonical_bytes() == b.canonical_bytes()

    def test_async_network(self):
        system = AsyncConsensusSystem(QuorumVote(), 3)
        a = system.run_fair_traced((0, 1, 1), seed=5).trace
        b = system.run_fair_traced((0, 1, 1), seed=5).trace
        assert a.fingerprint() == b.fingerprint()
        assert system.run_fair_traced((0, 1, 1), seed=6).trace.fingerprint() != \
            a.fingerprint()

    def test_async_ring(self):
        a = lcr_election([3, 1, 4, 1, 5], seed=2).trace
        b = lcr_election([3, 1, 4, 1, 5], seed=2).trace
        assert a.fingerprint() == b.fingerprint()

    def test_sync_ring(self):
        from repro.rings import timeslice_election

        a = timeslice_election([2, 5, 3]).trace
        b = timeslice_election([2, 5, 3]).trace
        assert a.fingerprint() == b.fingerprint()

    def test_lockstep_ring(self):
        a = run_lockstep(MaxTokenProtocol(), 6, 40).trace
        b = run_lockstep(MaxTokenProtocol(), 6, 40).trace
        assert a.fingerprint() == b.fingerprint()

    def test_datalink(self):
        def run():
            return run_datalink(
                AlternatingBitSender(), AlternatingBitReceiver(),
                ["a", "b"], FairLossyScheduler(loss=0.2, seed=3),
            )

        assert run().trace.fingerprint() == run().trace.fingerprint()

    def test_shared_memory(self):
        system = peterson_system()
        start = next(iter(system.initial_states()))
        for action in sorted(system.signature.inputs, key=repr):
            start = system.step(start, action)

        def run():
            return run_system(
                system, scheduler=RandomScheduler(seed=4), start=start,
                max_steps=25,
            )

        assert run().trace.fingerprint() == run().trace.fingerprint()

    def test_randomized_ring_is_a_function_of_the_seed(self):
        a = itai_rodeh_election(5, seed=11)
        b = itai_rodeh_election(5, seed=11)
        assert a.trace.fingerprint() == b.trace.fingerprint()
        assert a.leaders == b.leaders


# ---------------------------------------------------------------------------
# Replay: re-execution reproduces the trace byte for byte
# ---------------------------------------------------------------------------


class TestReplay:
    def test_synchronous_round_trip(self):
        trace = _sync_run().trace
        assert trace.replayable
        replayed = replay(trace)
        assert replayed.fingerprint() == trace.fingerprint()
        assert replayed.events == trace.events

    def test_async_network_round_trip(self):
        system = AsyncConsensusSystem(QuorumVote(), 3)
        trace = system.run_fair_traced((1, 0, 1), seed=9, exclude={0}).trace
        assert replay(trace).outcome == trace.outcome

    def test_ring_round_trip(self):
        trace = lcr_election([7, 2, 9, 4], seed=1).trace
        assert replay(trace).fingerprint() == trace.fingerprint()

    def test_datalink_round_trip(self):
        sender_factory = AlternatingBitSender
        receiver_factory = AlternatingBitReceiver
        result = run_datalink(
            sender_factory(), receiver_factory(), ["x", "y"],
            FairLossyScheduler(loss=0.25, seed=8),
            sender_factory=sender_factory, receiver_factory=receiver_factory,
        )
        assert replay(result.trace).fingerprint() == result.trace.fingerprint()

    def test_shared_memory_round_trip(self):
        system = peterson_system()
        start = next(iter(system.initial_states()))
        for action in sorted(system.signature.inputs, key=repr):
            start = system.step(start, action)
        traced = run_system(
            system, scheduler=RandomScheduler(seed=2), start=start, max_steps=20
        )
        assert replay(traced.trace).fingerprint() == traced.trace.fingerprint()

    def test_lockstep_round_trip(self):
        trace = run_lockstep(MaxTokenProtocol(), 5, 30).trace
        assert replay(trace).fingerprint() == trace.fingerprint()

    def test_execution_round_trip(self):
        from repro.core import Execution

        system = peterson_system()
        start = next(iter(system.initial_states()))
        execution = Execution.run(
            system, sorted(system.signature.inputs, key=repr), start
        )
        trace = execution.to_trace()
        assert replay(trace).fingerprint() == trace.fingerprint()

    def test_unreplayable_trace_raises(self):
        trace = Trace(substrate="s", protocol="p", seed=0, events=())
        assert not trace.replayable
        with pytest.raises(ReplayError):
            replay(trace)

    def test_divergent_replay_raises(self):
        good = Trace(substrate="s", protocol="p", seed=0, events=())
        bad = Trace(
            substrate="s", protocol="p", seed=0,
            events=(TraceEvent(0, "a", SEND),),
            replayer=lambda: good,
        )
        with pytest.raises(ReplayError):
            replay(bad)

    def test_record_trace_false_skips_recording(self):
        run = _sync_run(record=False)
        assert run.trace is None


# ---------------------------------------------------------------------------
# The adversary name unification keeps old import paths alive
# ---------------------------------------------------------------------------


class TestDeprecatedAliases:
    def test_sync_adversary_alias(self):
        import repro.consensus.synchronous as sync_module

        with pytest.warns(DeprecationWarning):
            alias = sync_module.Adversary
        assert alias is SyncAdversary

    def test_package_level_alias(self):
        import repro.consensus as consensus

        with pytest.warns(DeprecationWarning):
            alias = consensus.Adversary
        assert alias is SyncAdversary

    def test_greedy_adversary_alias(self):
        import repro.core.scheduler as scheduler_module
        from repro.core import GreedyScheduler

        with pytest.warns(DeprecationWarning):
            alias = scheduler_module.GreedyAdversary
        assert alias is GreedyScheduler

    def test_unknown_attribute_still_raises(self):
        import repro.core.scheduler as scheduler_module

        with pytest.raises(AttributeError):
            scheduler_module.no_such_name

    def test_everything_is_a_fault_adversary(self):
        from repro.core.scheduler import Scheduler
        from repro.datalink.simulate import ChannelAdversary

        assert issubclass(SyncAdversary, FaultAdversary)
        assert issubclass(ChannelAdversary, FaultAdversary)
        assert issubclass(Scheduler, FaultAdversary)


# ---------------------------------------------------------------------------
# Cross-substrate: one schema everywhere
# ---------------------------------------------------------------------------


class TestUnifiedSchema:
    def test_every_substrate_emits_trace_events(self):
        system = AsyncConsensusSystem(QuorumVote(), 3)
        sm = peterson_system()
        start = next(iter(sm.initial_states()))
        for action in sorted(sm.signature.inputs, key=repr):
            start = sm.step(start, action)
        traces = [
            _sync_run().trace,
            system.run_fair_traced((0, 1, 1), seed=5).trace,
            lcr_election([3, 1, 2], seed=0).trace,
            run_lockstep(MaxTokenProtocol(), 4, 20).trace,
            run_datalink(
                AlternatingBitSender(), AlternatingBitReceiver(), ["m"],
                FairLossyScheduler(seed=1),
            ).trace,
            run_system(
                sm, scheduler=RandomScheduler(seed=0), start=start, max_steps=10
            ).trace,
        ]
        substrates = {t.substrate for t in traces}
        assert len(substrates) == len(traces)  # six distinct substrates
        for trace in traces:
            assert isinstance(trace, Trace)
            for event in trace.events:
                assert isinstance(event, TraceEvent)
                assert event.kind in EVENT_KINDS
            assert [e.step for e in trace.events] == list(range(len(trace.events)))

    def test_fingerprints_distinguish_substrates(self):
        sync = _sync_run().trace
        ring = lcr_election([3, 1, 2], seed=0).trace
        assert sync.fingerprint() != ring.fingerprint()
