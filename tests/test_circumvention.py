"""The circumvention layer: detectors, Omega consensus, quorum leases.

The claims under test are the paper's two-sided story made executable.
Possible side: with an eventually-accurate failure detector, rotating-
coordinator consensus terminates on *every* suspicion schedule, and the
adaptive heartbeat detector realizes eventual accuracy plus completeness
once the partition schedule goes quiet.  Impossible side: a relentless
suspicion coalition starves every round of a quorum and the run exits
through a structured budget overdraft — liveness sacrificed, safety
never.  Around both: quorum leases stay single-holder under arbitrary
partition schedules while degrading *explicitly* (read-only modes,
bounded-staleness reads), the planted no-quorum and never-stabilizing
bugs are found / shrunk / corpus-replayed by the campaign engine, and
every run is a deterministic function of ``(atoms, seed)``.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    BUDGET_EXCEEDED,
    PASS,
    VIOLATION,
    BuggyLeaseTarget,
    HeartbeatDetectorTarget,
    QuorumLeaseTarget,
    ScheduleCorpus,
    UnstableDetectorTarget,
    circumvention_targets,
    replay_corpus,
    run_campaign,
)
from repro.chaos.generators import (
    random_partition_atoms,
    random_suspicion_atoms,
)
from repro.circumvention import (
    run_heartbeat_detector,
    run_quorum_lease,
    run_rotating_consensus,
)
from repro.circumvention.__main__ import main as circumvention_main
from repro.core.budget import Budget, BudgetExceeded
from repro.service import (
    CertificateStore,
    QueryService,
    detector_run_key,
    lease_run_key,
)

N = 4
RELENTLESS = tuple(("relentless", p) for p in range(3))

#: the golden detector schedule: a sustained split with a mid-split crash
DETECTOR_ATOMS = tuple(("split", t, 0b1100) for t in range(3, 9)) + (
    ("down", 6, 3),
)
#: the golden lease schedule: a sustained minority split mid-lease
LEASE_ATOMS = tuple(("split", t, 0b1100) for t in range(6, 12))


# ---------------------------------------------------------------------------
# Heartbeat detectors: eventual accuracy, completeness, determinism
# ---------------------------------------------------------------------------


class TestDetectorProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=9999))
    def test_diamond_p_holds_after_quiet_period(self, seed):
        """On every seed: once partitions stop, suspicion converges.

        Completeness — crashed processes end up (and stay) suspected by
        every live process.  Eventual accuracy — no live process is
        suspected at the horizon.  Agreement falls out: every live
        process elects the minimum live pid.
        """
        rng = random.Random(seed)
        target = HeartbeatDetectorTarget()
        atoms = target.generate(rng)
        run = run_heartbeat_detector(atoms, 0, horizon=target.HORIZON)
        assert run.complete
        crashed = {atom[2] for atom in atoms if atom[0] == "down"}
        live = [p for p in range(N) if p not in crashed]
        for p in live:
            suspected = set(run.suspects[p])
            assert crashed <= suspected, (
                f"seed {seed}: process {p} never completed suspicion of "
                f"crashed {crashed - suspected}"
            )
            assert suspected.isdisjoint(live), (
                f"seed {seed}: process {p} still suspects live "
                f"{suspected & set(live)} at the horizon"
            )
            assert run.leaders[p] == min(live)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=9999))
    def test_detector_deterministic_in_atoms_and_seed(self, seed):
        rng = random.Random(seed)
        atoms = random_partition_atoms(rng, n=N, horizon=16, max_down=1)
        first = run_heartbeat_detector(atoms, seed)
        second = run_heartbeat_detector(atoms, seed)
        assert first.trace.fingerprint() == second.trace.fingerprint()

    def test_monitor_clean_on_golden_schedule(self):
        target = HeartbeatDetectorTarget()
        trace = target.run(DETECTOR_ATOMS, seed=0)
        assert target.violations(trace, DETECTOR_ATOMS) == []

    def test_planted_detector_flaps_on_empty_schedule(self):
        # Adaptation off, timeout below the heartbeat interval: the
        # leader flaps forever — the counterexample needs *zero* atoms.
        target = UnstableDetectorTarget()
        trace = target.run((), seed=0)
        monitors = [v.monitor for v in target.violations(trace, ())]
        assert "leader-stability" in monitors

    def test_resume_is_byte_identical(self):
        full = run_heartbeat_detector(DETECTOR_ATOMS, 0)
        partial = run_heartbeat_detector(
            DETECTOR_ATOMS, 0, budget=Budget(max_steps=10)
        )
        assert not partial.complete and partial.interrupted is not None
        resumed = run_heartbeat_detector(DETECTOR_ATOMS, 0, resume=partial)
        assert resumed.complete
        assert resumed.trace.fingerprint() == full.trace.fingerprint()


# ---------------------------------------------------------------------------
# Rotating consensus: Omega terminates, relentless suspicion stalls safely
# ---------------------------------------------------------------------------


class TestOmegaConsensus:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=9999))
    def test_eventually_accurate_suspicion_always_decides(self, seed):
        """Every eventually-accurate schedule terminates — the FLP
        circumvention's possible side, on every seed."""
        rng = random.Random(seed)
        atoms = random_suspicion_atoms(rng, n=3, accurate_after=6)
        run = run_rotating_consensus(atoms, 0, inputs=(0, 1, 1))
        assert run.complete
        assert run.decided in (0, 1)
        # first clean round after suspicion turns accurate must decide
        assert run.rounds <= 6 + 3

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=9999))
    def test_validity_under_unanimous_inputs(self, seed):
        rng = random.Random(seed)
        atoms = random_suspicion_atoms(rng, n=3, accurate_after=6)
        run = run_rotating_consensus(atoms, 0, inputs=(1, 1, 1))
        assert run.decided == 1

    def test_relentless_coalition_meter_raises_structured(self):
        meter = Budget(max_steps=120).meter("stall")
        with pytest.raises(BudgetExceeded) as excinfo:
            run_rotating_consensus(RELENTLESS, 0, meter=meter)
        assert excinfo.value.spent > excinfo.value.limit == 120

    def test_relentless_budget_returns_resumable_partial(self):
        """``budget=`` is the graceful convention: a partial run comes
        back resumable, and resuming to the horizon still never decides
        — the stall costs liveness, never agreement."""
        partial = run_rotating_consensus(
            RELENTLESS, 0, budget=Budget(max_steps=120)
        )
        assert not partial.complete
        assert isinstance(partial.interrupted, BudgetExceeded)
        assert partial.decided is None
        finished = run_rotating_consensus(RELENTLESS, 0, resume=partial)
        assert finished.complete
        assert finished.decided is None  # stalled, not unsafe

    def test_sub_coalition_recovers(self):
        # Rotation reaches a coordinator outside the coalition: decides.
        atoms = (("relentless", 1),)
        run = run_rotating_consensus(atoms, 0, inputs=(0, 1, 1))
        assert run.decided in (0, 1)


# ---------------------------------------------------------------------------
# Quorum leases: single holder under every partition, explicit degradation
# ---------------------------------------------------------------------------


class TestQuorumLeases:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=9999))
    def test_honest_leases_never_overlap(self, seed):
        """Promise persistence + quorum intersection: no schedule the
        partition adversary can draw yields two concurrent holders, and
        the degraded-mode monitor's CAP contract holds throughout."""
        rng = random.Random(seed)
        target = QuorumLeaseTarget()
        atoms = target.generate(rng)
        trace = target.run(atoms, seed)
        assert target.violations(trace, atoms) == []

    def test_buggy_lease_split_election_double_grants(self):
        # The 1-minimal counterexample: one split atom at election time.
        atoms = (("split", 0, 0b0011),)
        target = BuggyLeaseTarget()
        monitors = [
            v.monitor for v in target.violations(target.run(atoms, 0), atoms)
        ]
        assert "lease-safety" in monitors

    def test_golden_schedule_degrades_explicitly(self):
        run = run_quorum_lease(LEASE_ATOMS, 0)
        degraded = [
            event
            for event in run.trace.events
            if isinstance(event.payload, tuple)
            and event.payload
            and event.payload[0] == "degraded"
        ]
        assert degraded, "sustained split produced no degraded-mode event"
        assert run.commits > 0  # the majority side kept committing

    def test_resume_is_byte_identical(self):
        full = run_quorum_lease(LEASE_ATOMS, 0)
        partial = run_quorum_lease(
            LEASE_ATOMS, 0, budget=Budget(max_steps=10)
        )
        assert not partial.complete
        resumed = run_quorum_lease(LEASE_ATOMS, 0, resume=partial)
        assert resumed.complete
        assert resumed.trace.fingerprint() == full.trace.fingerprint()


# ---------------------------------------------------------------------------
# The campaign contract: planted bugs found, stall expected, corpus replays
# ---------------------------------------------------------------------------

CAMPAIGN_RUNS = 12
MASTER_SEED = 0


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("circumvention-corpus"))


@pytest.fixture(scope="module")
def report(corpus_dir):
    """One fixed-seed campaign over the whole roster, shared module-wide."""
    return run_campaign(
        targets=circumvention_targets(),
        runs=CAMPAIGN_RUNS,
        master_seed=MASTER_SEED,
        corpus=corpus_dir,
    )


class TestCircumventionCampaign:
    def test_planted_bugs_found(self, report):
        counts = report.verdict_counts()
        assert counts["lease-no-quorum-bug"].get(VIOLATION, 0) > 0
        assert counts["detector-unstable-bug"].get(VIOLATION, 0) > 0

    def test_honest_targets_clean(self, report):
        counts = report.verdict_counts()
        for name in ("lease-quorum", "detector-heartbeat",
                     "omega-rotating-consensus"):
            assert counts[name] == {PASS: CAMPAIGN_RUNS}, name

    def test_adversarial_target_stalls_never_violates(self, report):
        """The impossibility receipt: relentless schedules exhaust the
        stall budget; no schedule ever produces a safety violation."""
        counts = report.verdict_counts()["rotating-consensus-adversarial"]
        assert counts.get(BUDGET_EXCEEDED, 0) > 0
        assert counts.get(VIOLATION, 0) == 0

    def test_campaign_passes_its_own_gate(self, report):
        assert report.failures(circumvention_targets()) == []

    def test_counterexamples_shrink_to_one_atom(self, report):
        """ddmin collapses every finding to its essence: the detector
        bug needs *zero* atoms, the lease bug exactly the one atom that
        split the election — and each shrunk trace replay-verifies."""
        assert report.counterexamples
        for cx in report.counterexamples:
            assert len(cx.shrunk) <= 1, (
                f"{cx.target}: shrunk schedule {cx.shrunk!r} is not "
                "a single atom"
            )
            assert cx.replay_verified, cx.target

    def test_replay_corpus_refinds_both_planted_bugs(self, report, corpus_dir):
        outcome = replay_corpus(
            ScheduleCorpus(corpus_dir), targets=circumvention_targets()
        )
        assert outcome["fingerprint_mismatches"] == []
        refound = set(outcome["violations_refound"])
        assert {"lease-no-quorum-bug", "detector-unstable-bug"} <= refound

    def test_workers_bit_identical(self):
        """The parallel-fabric anchor: the honest lease target at
        workers=1 and workers=2 folds to byte-identical results."""
        serial = run_campaign(
            targets=[QuorumLeaseTarget()], runs=8,
            master_seed=MASTER_SEED, workers=1,
        )
        fanned = run_campaign(
            targets=[QuorumLeaseTarget()], runs=8,
            master_seed=MASTER_SEED, workers=2,
        )
        keyed = lambda rep: [  # noqa: E731
            (r.target, r.index, r.seed, r.verdict, r.fingerprint)
            for r in rep.results
        ]
        assert keyed(serial) == keyed(fanned)
        assert serial.verdict_counts() == fanned.verdict_counts()
        assert all(r.verdict == PASS for r in serial.results)


# ---------------------------------------------------------------------------
# CLI: both sides of the circumvention from the shell
# ---------------------------------------------------------------------------


class TestCircumventionCLI:
    def test_flp_stall_exits_2_with_receipt(self, capsys):
        assert circumvention_main(["flp-stall"]) == 2
        out = capsys.readouterr().out
        assert "STALLED" in out and "budget overdraft" in out

    def test_omega_decides(self, capsys):
        assert circumvention_main(["omega", "--suspect", "0:1"]) == 0
        assert "decided" in capsys.readouterr().out

    def test_omega_relentless_stalls(self, capsys):
        rc = circumvention_main(
            ["omega", "--relentless", "0", "--relentless", "1",
             "--relentless", "2", "--max-steps", "120"]
        )
        assert rc == 2

    def test_detector_stabilizes(self, capsys):
        assert circumvention_main(["detector"]) == 0
        assert "stability" in capsys.readouterr().out

    def test_detector_planted_bug_flagged(self, capsys):
        rc = circumvention_main(
            ["detector", "--no-adaptive", "--initial-timeout", "0"]
        )
        assert rc == 1

    def test_lease_honest_then_buggy(self, capsys):
        assert circumvention_main(["lease"]) == 0
        capsys.readouterr()
        rc = circumvention_main(
            ["lease", "--buggy", "--atoms", '[["split", 0, 3]]']
        )
        assert rc == 1
        assert "UNSAFE" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Service integration: detector and lease runs as cacheable queries
# ---------------------------------------------------------------------------


class TestCircumventionQueries:
    def test_detector_run_miss_then_hit(self, tmp_path):
        store = CertificateStore(str(tmp_path / "certs"))
        service = QueryService(store)
        key = detector_run_key(atoms=DETECTOR_ATOMS, seed=0)
        cold = service.resolve(key)
        assert cold.source == "live" and cold.complete
        warm = service.resolve(key)
        assert warm.source == "store"
        assert warm.result == cold.result
        assert service.live == 1

    def test_lease_run_payload_pins_fingerprint(self, tmp_path):
        store = CertificateStore(str(tmp_path / "certs"))
        service = QueryService(store)
        key = lease_run_key(atoms=LEASE_ATOMS, seed=0)
        answer = service.resolve(key)
        assert answer.complete
        live = run_quorum_lease(LEASE_ATOMS, 0)
        assert (
            answer.result["trace_fingerprint"] == live.trace.fingerprint()
        )
