"""Tests for the Byzantine connectivity bound (E22, §2.2.1, Dolev [39])."""


from repro.consensus import (
    FloodVote,
    connectivity_certificate,
    connectivity_scenarios,
    run_cycle,
    run_spliced_cycle,
)


class TestFloodVoteOnTheCycle:
    def test_fault_free_agreement(self):
        run = run_cycle(FloodVote(), {"A": 0, "B": 1, "C": 1, "D": 0})
        decisions = set(run.decisions.values())
        assert len(decisions) == 1

    def test_fault_free_validity(self):
        for v in (0, 1):
            run = run_cycle(FloodVote(), {n: v for n in "ABCD"})
            assert set(run.decisions.values()) == {v}

    def test_silent_byzantine_survived(self):
        """With a merely silent faulty node (not a splice adversary),
        flood-vote still agrees — the splice is doing real work."""
        run = run_cycle(
            FloodVote(), {"A": 1, "B": 1, "C": 1, "D": 0},
            faulty="D", script={},
        )
        honest = {run.decisions[n] for n in ("A", "B", "C")}
        assert honest == {1}


class TestSplice:
    def test_spliced_cycle_has_eight_nodes(self):
        spliced = run_spliced_cycle(FloodVote())
        assert len(spliced.decisions) == 8

    def test_scenarios_views_verified(self):
        # The engine raises on any view mismatch; three scenarios returned
        # means the splice is exact.
        scenarios = connectivity_scenarios(FloodVote())
        assert len(scenarios) == 3

    def test_validity_scenarios_pass_agreement_fails(self):
        scenarios = {s.requirement: s.holds for s in
                     connectivity_scenarios(FloodVote())}
        assert scenarios["validity-0"]
        assert scenarios["validity-1"]
        assert not scenarios["agreement"]

    def test_certificate(self):
        cert = connectivity_certificate(FloodVote())
        assert cert.technique == "scenario (connectivity splice)"
        assert cert.witnesses
        witness_run = cert.witnesses[0].evidence
        # The witness is a genuine run of the real 4-cycle with B faulty
        # in which A and C decide differently.
        assert witness_run.faulty == "B"
        assert witness_run.decisions["A"] != witness_run.decisions["C"]
