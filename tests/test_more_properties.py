"""Second property-based suite: randomized structures against the theorems.

Generates random *valid* distributed computations, adversary scripts and
input vectors, and checks the library's invariants hold across them —
the clock-condition biconditional, authenticated-agreement robustness,
and partial-synchrony validity.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import (
    Computation,
    Event,
    check_clock_condition,
    check_vector_condition,
)
from repro.consensus import DolevStrong, ScriptedByzantine, run_synchronous


def random_computation(seed: int, processes=("p", "q", "r"), steps: int = 12
                       ) -> Computation:
    """Build a random valid computation: local events, sends, and receives
    of previously sent (not yet received) messages."""
    rng = random.Random(seed)
    counters = {p: 0 for p in processes}
    in_flight = []
    events = []
    message_id = 0
    for _ in range(steps):
        p = rng.choice(processes)
        deliverable = [m for m in in_flight if m[1] != p]
        kind = rng.choice(
            ["local", "send"] + (["recv"] if deliverable else [])
        )
        if kind == "local":
            events.append(Event(p, counters[p], "local"))
        elif kind == "send":
            message_id += 1
            events.append(Event(p, counters[p], "send", f"m{message_id}"))
            in_flight.append((f"m{message_id}", p))
        else:
            mid, _src = deliverable[rng.randrange(len(deliverable))]
            in_flight.remove((mid, _src))
            events.append(Event(p, counters[p], "recv", mid))
        counters[p] += 1
    return Computation(events)


class TestClockTheorems:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_lamport_condition_on_random_computations(self, seed):
        assert check_clock_condition(random_computation(seed))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_vector_biconditional_on_random_computations(self, seed):
        assert check_vector_condition(random_computation(seed))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_happens_before_is_a_strict_partial_order(self, seed):
        c = random_computation(seed, steps=10)
        events = c.events
        for a in events:
            assert not c.happens_before(a, a)
            for b in events:
                if c.happens_before(a, b):
                    assert not c.happens_before(b, a)
                    for d in events:
                        if c.happens_before(b, d):
                            assert c.happens_before(a, d)


def random_script(seed: int, n: int, rounds: int, faulty: int):
    """A random signature-respecting Byzantine script for Dolev–Strong:
    the faulty sender signs arbitrary values; silence is also allowed."""
    rng = random.Random(seed)
    script = {}
    for dest in range(n):
        if dest == faulty:
            continue
        if rng.random() < 0.8:
            value = rng.randrange(2)
            script[(1, faulty, dest)] = frozenset({(value, (faulty,))})
    return script


class TestAuthenticatedAgreementProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_dolev_strong_agreement_under_random_sender_scripts(self, seed):
        """Whatever single-signature chains a faulty sender distributes,
        the honest processes agree."""
        n, t = 4, 1
        adversary = ScriptedByzantine([0], random_script(seed, n, t + 1, 0))
        run = run_synchronous(DolevStrong(), [0] * n, adversary=adversary, t=t)
        assert run.agreement_holds()
        assert run.all_honest_decided()


class TestPartialSynchronyProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 1))
    def test_dls_unanimous_validity(self, seed, v):
        from repro.asynchronous import run_dls

        result = run_dls(4, 1, [v] * 4, gst_phase=3, seed=seed)
        decided = {d for d in result.decisions.values() if d is not None}
        assert decided <= {v}


class TestRenamingVsSnapshotIntegration:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 200))
    def test_snapshot_histories_linearizable_under_random_mixes(self, seed):
        from repro.registers import (
            RegisterSpace,
            SnapshotObject,
            check_snapshot_history,
            initial_registers,
            run_concurrent,
        )

        rng = random.Random(seed)
        n = 3
        obj = SnapshotObject(n)
        space = RegisterSpace(initial_registers(n))
        ops = []
        for p in range(n):
            for k in range(rng.randrange(1, 3)):
                if rng.random() < 0.6:
                    ops.append(obj.update_op(f"p{p}", p, f"v{p}.{k}"))
                else:
                    ops.append(obj.scan_op(f"p{p}"))
        history = run_concurrent(space, ops, seed=seed)
        assert check_snapshot_history(history, n) is not None
