"""Tests for Byzantine agreement: EIG, Phase King, Dolev–Strong, and the
ring-splice impossibility engine (E3)."""

import itertools

import pytest

from repro.consensus import (
    ByzantineAdversary,
    DolevStrong,
    EIGByzantine,
    EquivocatingSender,
    LateRevealRelay,
    PhaseKing,
    balanced_three_partition,
    byzantine_scenarios,
    flm_certificate,
    run_spliced_ring,
    run_synchronous,
)
from repro.core import ModelError


def equivocator(faulty_pid, value_for_even=0, value_for_odd=1):
    """A Byzantine process reporting different inputs to different peers."""

    def behaviour(rnd, src, dest, honest):
        if rnd == 1:
            return (((), value_for_even if dest % 2 == 0 else value_for_odd),)
        return honest

    return ByzantineAdversary([faulty_pid], behaviour)


def silent(faulty_pid):
    return ByzantineAdversary([faulty_pid], lambda r, s, d, m: None)


class TestEIG:
    @pytest.mark.parametrize("inputs", list(itertools.product((0, 1), repeat=4)))
    def test_fault_free_agreement_and_validity(self, inputs):
        run = run_synchronous(EIGByzantine(), list(inputs), t=1)
        assert run.agreement_holds()
        assert run.validity_holds()
        assert run.all_honest_decided()

    @pytest.mark.parametrize("inputs", [(0, 1, 0, 1), (1, 1, 1, 0), (0, 0, 0, 1)])
    def test_survives_equivocator_n4_t1(self, inputs):
        run = run_synchronous(
            EIGByzantine(), list(inputs), adversary=equivocator(3), t=1
        )
        assert run.agreement_holds()
        assert run.validity_holds()

    def test_survives_silent_byzantine(self):
        run = run_synchronous(
            EIGByzantine(), [1, 1, 1, 0], adversary=silent(3), t=1
        )
        assert run.agreement_holds()
        assert run.validity_holds()

    def test_n7_t2_with_two_byzantine(self):
        def behaviour(rnd, src, dest, honest):
            return (((), dest % 2),) if rnd == 1 else None

        adversary = ByzantineAdversary([5, 6], behaviour)
        run = run_synchronous(EIGByzantine(), [1, 1, 1, 1, 1, 0, 0],
                              adversary=adversary, t=2)
        assert run.agreement_holds()
        assert run.validity_holds()

    def test_garbage_messages_treated_as_silence(self):
        adversary = ByzantineAdversary([3], lambda r, s, d, m: "garbage")
        run = run_synchronous(EIGByzantine(), [1, 1, 1, 0], adversary=adversary,
                              t=1)
        assert run.agreement_holds()


class TestPhaseKing:
    @pytest.mark.parametrize("inputs", list(itertools.product((0, 1), repeat=5)))
    def test_fault_free(self, inputs):
        run = run_synchronous(PhaseKing(), list(inputs), t=1)
        assert run.agreement_holds()
        assert run.validity_holds()

    def test_survives_byzantine_n5_t1(self):
        """n=5 > 4t with t=1."""
        def behaviour(rnd, src, dest, honest):
            return dest % 2

        adversary = ByzantineAdversary([4], behaviour)
        for inputs in [(0, 1, 0, 1, 0), (1, 1, 1, 1, 0), (0, 0, 0, 0, 1)]:
            run = run_synchronous(PhaseKing(), list(inputs),
                                  adversary=adversary, t=1)
            assert run.agreement_holds()
            assert run.validity_holds()

    def test_survives_byzantine_king(self):
        """The faulty process is a king in some phase and lies as one."""
        def behaviour(rnd, src, dest, honest):
            return dest % 2  # equivocate in votes and as king

        adversary = ByzantineAdversary([0], behaviour)
        run = run_synchronous(PhaseKing(), [0, 1, 1, 0, 1],
                              adversary=adversary, t=1)
        assert run.agreement_holds()


class TestDolevStrong:
    def test_honest_sender(self):
        run = run_synchronous(DolevStrong(), [1, 0, 0, 0], t=1)
        assert run.all_honest_decided()
        assert set(run.honest_decisions().values()) == {1}

    def test_equivocating_sender_still_agrees(self):
        run = run_synchronous(
            DolevStrong(), [0, 0, 0, 0], adversary=EquivocatingSender(0, 1), t=1
        )
        assert run.agreement_holds()
        assert run.all_honest_decided()

    def test_late_reveal_with_two_faults(self):
        """Sender + relay colluding, t=2, 3 rounds: agreement survives
        because the victim has a round left to relay the revelation."""
        adversary = LateRevealRelay(relay=1, victim=2, value_a=0, value_b=1)
        run = run_synchronous(DolevStrong(), [0, 0, 0, 0, 0],
                              adversary=adversary, t=2)
        assert run.agreement_holds()
        assert run.all_honest_decided()
        # Both values were extracted, so the decision is the default.
        assert set(run.honest_decisions().values()) == {0}

    def test_chain_validation(self):
        from repro.consensus import chain_valid

        assert chain_valid((1, (0,)), sender=0, rnd=1)
        assert chain_valid((1, (0, 2)), sender=0, rnd=2)
        assert not chain_valid((1, (2,)), sender=0, rnd=1)  # wrong root
        assert not chain_valid((1, (0, 0)), sender=0, rnd=2)  # duplicate
        assert not chain_valid((1, (0,)), sender=0, rnd=2)  # too short
        assert not chain_valid("junk", sender=0, rnd=1)


class TestRingSplice:
    """E3: the Fischer–Lynch–Merritt argument, mechanized."""

    def test_balanced_partition(self):
        assert balanced_three_partition(3) == ((0,), (1,), (2,))
        assert balanced_three_partition(7) == ((0, 1, 2), (3, 4), (5, 6))
        with pytest.raises(ModelError):
            balanced_three_partition(2)

    def test_spliced_ring_runs_and_records(self):
        spliced = run_spliced_ring(EIGByzantine(), n=3, t=1)
        assert len(spliced.decisions) == 6
        assert len(spliced.views) == 6
        assert spliced.messages  # messages were recorded

    def test_scenarios_views_match_hexagon(self):
        """The engine itself checks view equality and raises on mismatch;
        reaching the assertion list means the splice is exact."""
        spliced = run_spliced_ring(EIGByzantine(), n=3, t=1)
        scenarios = byzantine_scenarios(EIGByzantine(), spliced)
        assert len(scenarios) == 3

    def test_eig_defeated_at_n3_t1(self):
        cert = flm_certificate(EIGByzantine(), n=3, t=1)
        assert cert.witnesses
        assert "n=3, t=1" in cert.claim

    def test_eig_defeated_at_n6_t2(self):
        cert = flm_certificate(EIGByzantine(), n=6, t=2)
        assert cert.witnesses

    def test_phase_king_defeated_at_n3_t1(self):
        cert = flm_certificate(PhaseKing(), n=3, t=1)
        assert cert.witnesses

    def test_refuses_outside_impossibility_region(self):
        with pytest.raises(ModelError):
            flm_certificate(EIGByzantine(), n=4, t=1)

    def test_defeated_scenario_is_a_real_run(self):
        """The witness evidence is an execution of the true 3-process
        system whose named requirement genuinely fails."""
        cert = flm_certificate(EIGByzantine(), n=3, t=1)
        witness = cert.witnesses[0]
        run = witness.evidence
        assert run.n == 3
        if "validity-1" in witness.property_violated:
            assert any(d != 1 for d in run.honest_decisions().values())
        elif "validity-0" in witness.property_violated:
            assert any(d != 0 for d in run.honest_decisions().values())
        else:
            assert len(set(run.honest_decisions().values())) > 1
