"""Tests for the shared state-graph engine and memoized valency labelling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FunctionAutomaton,
    SearchBudgetExceeded,
    Signature,
    StateGraph,
    TableAutomaton,
    assert_invariant,
    can_reach_from,
    check_invariant,
    explore,
    find_state,
    freeze,
    frozendict,
    intern_frozen,
    state_graph,
)
from repro.impossibility import ValencyAnalyzer


def counter(limit=5):
    sig = Signature(internals=frozenset({"inc"}))
    transitions = {(i, "inc"): [i + 1] for i in range(limit)}
    return TableAutomaton(sig, initial=[0], transitions=transitions, name="counter")


class TestSuccessorCache:
    def test_each_state_expanded_once_across_queries(self):
        auto = counter(50)
        graph = state_graph(auto)
        explore(auto)
        misses_after_explore = graph.misses
        assert misses_after_explore > 0
        # Four more queries over the same automaton: all served from cache.
        check_invariant(auto, lambda s: s <= 50)
        find_state(auto, lambda s: s == 17)
        assert explore(auto).reachable == set(range(51))
        assert_invariant(auto, lambda s: True, "trivial")
        assert graph.misses == misses_after_explore
        # Asking for an expanded state's edges again is a hit, not a sweep.
        graph.transitions(0)
        assert graph.hits > 0

    def test_registry_returns_same_graph(self):
        auto = counter(3)
        assert state_graph(auto) is state_graph(auto)

    def test_distinct_automata_get_distinct_graphs(self):
        assert state_graph(counter(3)) is not state_graph(counter(3))

    def test_stats_accounting(self):
        auto = counter(4)
        graph = state_graph(auto)
        explore(auto)
        stats = graph.stats
        assert stats["states_expanded"] == 5
        assert stats["misses"] == 5
        assert stats["frontier_states"] == 5

    def test_transitions_cached_per_state(self):
        calls = []
        sig = Signature(internals=frozenset({"inc"}))
        auto = FunctionAutomaton(
            sig,
            initial=[0],
            enabled=lambda s: ["inc"] if s < 5 else [],
            transition=lambda s, a: (calls.append(s), [s + 1])[1],
            name="instrumented",
        )
        graph = StateGraph(auto)
        graph.transitions(0)
        graph.transitions(0)
        graph.transitions(0)
        assert calls == [0]


class TestSinglePassAssert:
    def test_assert_invariant_explores_once(self):
        expansions = []
        sig = Signature(internals=frozenset({"inc"}))
        auto = FunctionAutomaton(
            sig,
            initial=[0],
            enabled=lambda s: ["inc"] if s < 9 else [],
            transition=lambda s, a: (expansions.append(s), [s + 1])[1],
            name="count-once",
        )
        assert assert_invariant(auto, lambda s: True, "trivial") == 10
        # One transition sweep per reachable non-terminal state — the old
        # implementation re-explored after the check and did twice this.
        assert len(expansions) == 9

    def test_count_matches_reachable_states(self):
        assert assert_invariant(counter(7), lambda s: True, "trivial") == 8


class TestBudgets:
    def test_explore_budget(self):
        with pytest.raises(SearchBudgetExceeded):
            explore(counter(100), max_states=10)

    def test_budget_exceeded_then_resumed(self):
        auto = counter(30)
        with pytest.raises(SearchBudgetExceeded):
            explore(auto, max_states=10)
        # A later call with budget to spare resumes the same frontier.
        result = explore(auto, max_states=1000)
        assert result.reachable == set(range(31))

    def test_check_invariant_budget(self):
        with pytest.raises(SearchBudgetExceeded):
            check_invariant(counter(100), lambda s: True, max_states=10)

    def test_cone_budget(self):
        with pytest.raises(SearchBudgetExceeded):
            can_reach_from(counter(100), 0, lambda s: s == 99, max_states=10)

    def test_valency_budget(self):
        system = _chain_system(length=40)
        analyzer = ValencyAnalyzer(system, max_configurations=10)
        with pytest.raises(SearchBudgetExceeded):
            analyzer.valency(0)


class TestPathErrors:
    def test_path_to_undiscovered_state_is_informative(self):
        result = explore(counter(5))
        with pytest.raises(ValueError, match="not discovered"):
            result.path_to(99)


class TestConeMemoization:
    def test_repeated_queries_share_cone(self):
        auto = counter(20)
        graph = state_graph(auto)
        assert can_reach_from(auto, 3, lambda s: s == 20)
        misses = graph.misses
        assert not can_reach_from(auto, 3, lambda s: s == 0)
        assert graph.misses == misses
        assert graph.stats["cones_cached"] == 1


class TestInterning:
    def test_freeze_interns_equal_values(self):
        a = freeze({"x": [1, 2], "y": {"z": 3}})
        b = freeze({"y": {"z": 3}, "x": (1, 2)})
        assert a is b

    def test_intern_frozen_passes_scalars_through(self):
        assert intern_frozen(7) == 7
        assert intern_frozen("s") == "s"

    def test_frozendict_set_unchanged_returns_self(self):
        d = frozendict({"a": 1, "b": 2})
        assert d.set("a", 1) is d
        assert d.set("a", 2) is not d

    def test_hash_fast_path_eq(self):
        d1 = frozendict({"a": 1})
        d2 = frozendict({"a": 2})
        hash(d1), hash(d2)
        assert d1 != d2
        assert d1 == frozendict({"a": 1})


# ---------------------------------------------------------------------------
# Valency labelling vs. the straightforward per-configuration reference
# ---------------------------------------------------------------------------


class _GraphSystem:
    """A decision system given by an explicit (possibly cyclic) digraph."""

    processes = (0, 1)
    values = (0, 1)

    def __init__(self, succs, decided, initial):
        self._succs = succs          # node -> tuple of successor nodes
        self._decided = decided      # node -> frozenset of decided values
        self._initial = initial

    def initial_configurations(self):
        return list(self._initial)

    def events(self, config):
        return [(i, i % 2) for i in range(len(self._succs[config]))]

    def owner(self, event):
        return event[1]

    def apply(self, config, event):
        return self._succs[config][event[0]]

    def decisions(self, config):
        return {i: v for i, v in enumerate(sorted(self._decided[config]))}

    def decided_values(self, config):
        return self._decided[config]

    def fair_events(self, config):
        owed = {}
        for event in self.events(config):
            owed.setdefault(self.owner(event), event)
        return owed


def _chain_system(length):
    succs = {i: (i + 1,) for i in range(length)}
    succs[length] = ()
    decided = {i: frozenset() for i in range(length)}
    decided[length] = frozenset({0})
    return _GraphSystem(succs, decided, [0])


def _reference_valency(system, config):
    """The definition, executed naively: union of decided values over the
    reachable cone of ``config`` (fresh DFS per query, no sharing)."""
    seen = set()
    stack = [config]
    vals = set()
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        vals |= system.decided_values(current)
        for event in system.events(current):
            child = system.apply(current, event)
            if child not in seen:
                stack.append(child)
    return frozenset(vals)


@st.composite
def graph_systems(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    succs = {}
    decided = {}
    for node in range(n):
        out_degree = draw(st.integers(min_value=0, max_value=3))
        succs[node] = tuple(
            draw(st.integers(min_value=0, max_value=n - 1))
            for _ in range(out_degree)
        )
        decided[node] = frozenset(
            draw(st.sets(st.sampled_from([0, 1]), max_size=2))
        )
    initial = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1, max_size=3, unique=True,
        )
    )
    return _GraphSystem(succs, decided, initial)


class TestValencyAgainstReference:
    @settings(max_examples=200, deadline=None)
    @given(graph_systems())
    def test_backward_closure_matches_per_config_dfs(self, system):
        analyzer = ValencyAnalyzer(system)
        for config in range(len(system._succs)):
            assert analyzer.valency(config) == _reference_valency(
                system, config
            ), f"valency mismatch at node {config}"

    @settings(max_examples=100, deadline=None)
    @given(graph_systems())
    def test_batched_labelling_matches_lazy_queries(self, system):
        batched = ValencyAnalyzer(system)
        labels = batched.label_reachable()
        lazy = ValencyAnalyzer(system)
        for config, valency in labels.items():
            assert lazy.valency(config) == valency

    @settings(max_examples=100, deadline=None)
    @given(graph_systems())
    def test_classification_consistency(self, system):
        analyzer = ValencyAnalyzer(system)
        for config, valency in analyzer.classify_initial():
            assert analyzer.is_bivalent(config) == (len(valency) >= 2)
            assert analyzer.is_univalent(config) == (len(valency) == 1)


class TestTransitionCacheSharing:
    def test_agreement_search_reuses_valency_expansion(self):
        system = _chain_system(length=25)
        analyzer = ValencyAnalyzer(system)
        analyzer.label_reachable()
        misses = analyzer.cache.misses
        assert analyzer.find_disagreement() is None
        assert analyzer.cache.misses == misses
        assert analyzer.cache.hits > 0

    def test_find_disagreement_is_the_agreement_query(self):
        system = _chain_system(length=3)
        analyzer = ValencyAnalyzer(system)
        assert (
            analyzer.find_disagreement() is None
            and analyzer.find_agreement_violation() is None
        )
