"""Tests for k-exclusion (resource allocation with k units)."""

import pytest

from repro.shared_memory import counting_semaphore_system
from repro.shared_memory.kexclusion import cas_semaphore_system


class TestCountingSemaphore:
    @pytest.mark.parametrize("n,k", [(2, 1), (3, 1), (3, 2), (4, 2)])
    def test_k_exclusion_holds(self, n, k):
        system = counting_semaphore_system(n, k)
        assert system.check_k_exclusion(max_states=400_000) is None

    def test_k_equals_one_is_mutex(self):
        system = counting_semaphore_system(2, 1)
        assert system.check_mutual_exclusion() is None

    def test_k_units_actually_usable(self):
        """With k=2, two processes can be critical simultaneously — the
        k-exclusion bound is tight, not vacuous."""
        from repro.core.exploration import find_state

        system = counting_semaphore_system(3, 2)
        path = find_state(
            system,
            goal=lambda s: len(system.critical_processes(s)) == 2,
            include_inputs=True,
            max_states=400_000,
        )
        assert path is not None

    def test_faa_semaphore_livelocks(self):
        """The blind fetch-and-add semaphore has a genuine livelock: two
        colliding increments back out and retry forever.  The
        starvation-cycle checker discovers it — a nice demonstration that
        the liveness checker finds real algorithm bugs, not just the
        textbook unfairness."""
        system = counting_semaphore_system(2, 1)
        witness = system.check_deadlock_freedom("p0")
        assert witness is not None
        # The livelock consists purely of protocol steps, no entries.
        assert all(a[0] == "step" for a in witness.cycle_actions)


class TestCasSemaphore:
    @pytest.mark.parametrize("n,k", [(2, 1), (3, 1), (3, 2)])
    def test_k_exclusion_holds(self, n, k):
        system = cas_semaphore_system(n, k)
        assert system.check_k_exclusion(max_states=400_000) is None

    def test_deadlock_freedom(self):
        """CAS repairs the FAA livelock: a failed attempt changes nothing,
        so a free unit is always claimed by someone."""
        system = cas_semaphore_system(2, 1)
        for p in ("p0", "p1"):
            assert system.check_deadlock_freedom(p) is None

    def test_not_lockout_free(self):
        system = cas_semaphore_system(2, 1)
        assert system.check_lockout_freedom("p0") is not None
