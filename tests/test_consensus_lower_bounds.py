"""Tests for the t+1-round lower bound machinery (E4)."""


from repro.consensus import (
    FloodSet,
    enumerate_crash_adversaries,
    find_fooling_pair,
    find_round_bound_violation,
    round_lower_bound_certificate,
)


class TestAdversaryEnumeration:
    def test_includes_no_fault(self):
        advs = list(enumerate_crash_adversaries(3, 1, 1))
        assert any(not a.faulty for a in advs)

    def test_count_single_fault_single_round(self):
        # 1 + (3 victims) * (1 round) * (2^2 receiver subsets) = 13.
        advs = list(enumerate_crash_adversaries(3, 1, 1))
        assert len(advs) == 1 + 3 * 1 * 4

    def test_count_grows_with_rounds(self):
        one = len(list(enumerate_crash_adversaries(3, 1, 1)))
        two = len(list(enumerate_crash_adversaries(3, 1, 2)))
        assert two == 1 + 3 * 2 * 4
        assert two > one

    def test_two_fault_patterns_present(self):
        advs = list(enumerate_crash_adversaries(3, 2, 1))
        assert any(len(a.faulty) == 2 for a in advs)


class TestRoundBound:
    def test_one_round_fails_with_one_fault(self):
        result = find_round_bound_violation(
            FloodSet(rounds_override=1), n=3, t=1, rounds=1
        )
        assert result.violation is not None
        assert result.violated_property in ("agreement", "validity")

    def test_two_rounds_suffice_for_one_fault(self):
        result = find_round_bound_violation(FloodSet(), n=3, t=1)
        assert result.violation is None
        assert result.runs_checked > 100  # the search was genuinely exhaustive

    def test_two_rounds_fail_with_two_faults(self):
        result = find_round_bound_violation(
            FloodSet(rounds_override=2), n=4, t=2, rounds=2
        )
        assert result.violation is not None

    def test_certificate_t1(self):
        cert = round_lower_bound_certificate(
            lambda r: FloodSet(rounds_override=r), n=3, t=1
        )
        assert cert.candidates_checked == 1
        assert len(cert.witnesses) == 1
        assert "t+1=2" in cert.claim

    def test_violating_run_is_replayable(self):
        """The witness carries the concrete crash pattern; re-running it
        reproduces the violation."""
        from repro.consensus import run_synchronous

        result = find_round_bound_violation(
            FloodSet(rounds_override=1), n=3, t=1, rounds=1
        )
        bad = result.violation
        replay = run_synchronous(
            FloodSet(rounds_override=1),
            list(bad.inputs),
            adversary=bad.adversary,
            t=1,
            rounds=1,
        )
        assert replay.decisions == bad.decisions


class TestFoolingPair:
    def test_found_for_truncated_protocol(self):
        pair = find_fooling_pair(FloodSet(rounds_override=1), n=3, t=1, rounds=1)
        assert pair is not None
        # The fooled process really cannot distinguish the two runs.
        assert pair.run_a.indistinguishable_to(pair.run_b, pair.fooled_process)
        # And the runs' honest decision sets genuinely differ.
        da = frozenset(v for v in pair.run_a.honest_decisions().values())
        db = frozenset(v for v in pair.run_b.honest_decisions().values())
        assert da != db
