"""Tests for the Two Generals chain argument (E7)."""

import pytest

from repro.asynchronous import (
    ATTACK,
    RETREAT,
    HandshakeProtocol,
    RecklessProtocol,
    TimidProtocol,
    delivery_chain,
    run_with_losses,
    two_generals_certificate,
    validate_chain_links,
)


class TestExecutionModel:
    def test_full_delivery_handshake(self):
        run = run_with_losses(HandshakeProtocol(2, 1), ATTACK, delivered=2)
        assert run.decisions == (ATTACK, ATTACK)

    def test_no_delivery(self):
        run = run_with_losses(HandshakeProtocol(2, 1), ATTACK, delivered=0)
        assert run.decisions == (RETREAT, RETREAT)

    def test_retreat_order_never_attacks(self):
        for k in range(3):
            run = run_with_losses(HandshakeProtocol(2, 1), RETREAT, delivered=k)
            assert ATTACK not in run.decisions

    def test_chain_structure(self):
        chain = delivery_chain(HandshakeProtocol(4, 2), ATTACK)
        assert [run.delivered for run in chain] == [4, 3, 2, 1, 0]

    def test_chain_links_validate(self):
        chain = delivery_chain(HandshakeProtocol(4, 2), ATTACK)
        validate_chain_links(chain)  # raises on a broken link


class TestCertificates:
    @pytest.mark.parametrize("rounds,confirmations", [
        (2, 1), (4, 1), (4, 2), (6, 3),
    ])
    def test_every_handshake_fails(self, rounds, confirmations):
        cert = two_generals_certificate(HandshakeProtocol(rounds, confirmations))
        assert cert.technique == "chain (message removal)"
        # The failure is always an uncoordinated pair somewhere mid-chain.
        assert "uncoordinated" in cert.claim or "decide" in cert.claim

    def test_handshake_failure_is_agreement_violation(self):
        cert = two_generals_certificate(HandshakeProtocol(2, 1))
        run = cert.evidence
        assert not run.agreement

    def test_timid_fails_full_delivery_requirement(self):
        cert = two_generals_certificate(TimidProtocol())
        assert "never coordinates" in cert.claim

    def test_reckless_fails_empty_requirement(self):
        cert = two_generals_certificate(RecklessProtocol())
        assert "no information" in cert.claim

    def test_deeper_handshakes_fail_deeper_in_the_chain(self):
        """More acks push the break point further along — but never away."""
        shallow = two_generals_certificate(HandshakeProtocol(2, 1))
        deep = two_generals_certificate(HandshakeProtocol(6, 3))
        assert shallow.details["delivered"] <= deep.details["delivered"]
