"""Ben-Or randomized consensus: safety on every seed, liveness w.p. 1.

The legacy ``run_ben_or`` surface is now an adapter over the runtime
engine (:mod:`repro.circumvention.randomized`), so the first half keeps
the seed-era assertions verbatim; the second half exercises the engine
directly through ``(atoms, seed)`` coordinates — hypothesis properties
for agreement/validity on every seed, byte-identical replay, and
bit-identical expected-round sweeps at any worker count.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asynchronous import run_ben_or, termination_statistics
from repro.circumvention import expected_rounds, run_ben_or_traced
from repro.core import ModelError
from repro.core.runtime import replay


class TestSafety:
    @pytest.mark.parametrize("seed", range(15))
    def test_agreement_under_random_schedules(self, seed):
        result = run_ben_or(3, 1, [0, 1, seed % 2], seed=seed)
        assert result.agreement

    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_with_crash(self, seed):
        result = run_ben_or(
            5, 2, [0, 1, 0, 1, 1], seed=seed,
            crash_plan={4: 3 * seed, 3: 7 * seed + 1},
        )
        assert result.agreement

    def test_validity_unanimous_inputs(self):
        for v in (0, 1):
            result = run_ben_or(4, 1, [v] * 4, seed=9)
            assert result.validity
            live = [p for p in range(4) if p not in result.crashed]
            assert all(result.decisions[p] == v for p in live)

    def test_unanimous_decides_in_first_phase(self):
        result = run_ben_or(4, 1, [1, 1, 1, 1], seed=3)
        live = [p for p in range(4) if p not in result.crashed]
        assert all(result.phases[p] == 1 for p in live)


class TestLiveness:
    def test_high_decision_rate(self):
        stats = termination_statistics(4, 1, trials=30)
        assert stats["decided_fraction"] >= 0.9

    def test_reproducible(self):
        a = run_ben_or(3, 1, [0, 1, 1], seed=42)
        b = run_ben_or(3, 1, [0, 1, 1], seed=42)
        assert a.decisions == b.decisions
        assert a.events == b.events

    def test_different_seeds_vary_schedule(self):
        events = {run_ben_or(3, 1, [0, 1, 1], seed=s).events for s in range(6)}
        assert len(events) > 1


class TestContract:
    def test_rejects_overpowered_adversary(self):
        with pytest.raises(ModelError):
            run_ben_or(3, 1, [0, 1, 1], crash_plan={0: 1, 1: 2})

    def test_rejects_wrong_input_count(self):
        with pytest.raises(ModelError):
            run_ben_or(3, 1, [0, 1])


# ---------------------------------------------------------------------------
# Runtime engine: (atoms, seed) coordinates
# ---------------------------------------------------------------------------

#: adversary schedules drawn as atoms: a script prefix plus crash atoms
_scripts = st.lists(st.integers(0, 31), max_size=12)
_crashes = st.lists(
    st.tuples(
        st.just("crash"), st.integers(0, 40), st.integers(0, 3)
    ),
    max_size=2,
)


class TestRuntimeSafety:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.tuples(*[st.integers(0, 1)] * 4))
    def test_agreement_and_validity_on_every_seed(self, seed, inputs):
        run = run_ben_or_traced((), seed, t=1, inputs=inputs)
        assert run.agreement
        assert run.validity

    @settings(max_examples=30, deadline=None)
    @given(_scripts, _crashes, st.integers(0, 10_000))
    def test_safety_under_adversarial_atoms(self, script, crashes, seed):
        atoms = tuple(script) + tuple(crashes)
        run = run_ben_or_traced(atoms, seed, t=1, inputs=(0, 1, 0, 1))
        assert run.agreement
        assert run.validity

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 1))
    def test_unanimous_inputs_decide_that_value(self, seed, v):
        run = run_ben_or_traced((), seed, t=1, inputs=(v,) * 4)
        live = [p for p in run.decisions if p not in run.crashed]
        assert all(run.decisions[p] in (None, v) for p in live)

    def test_biased_coin_is_safe_but_never_terminates(self):
        """The planted bug: anti-correlated coins re-split every phase."""
        run = run_ben_or_traced(
            (), 0, t=1, inputs=(0, 1, 0, 1), biased_coin=True,
            max_events=400,
        )
        assert run.agreement and run.validity  # safety is coin-independent
        assert all(v is None for v in run.decisions.values())


class TestRuntimeReplay:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_replay_is_byte_identical(self, seed):
        run = run_ben_or_traced((3, 1, 4, 1, 5), seed, t=1,
                                inputs=(0, 1, 0, 1))
        fresh = replay(run.trace)  # raises ReplayDivergence on mismatch
        assert fresh.fingerprint() == run.trace.fingerprint()

    def test_crash_atoms_replay(self):
        atoms = (2, 7, ("crash", 3, 1))
        run = run_ben_or_traced(atoms, 5, t=1, inputs=(1, 0, 1, 0))
        assert run.crashed == (1,)
        assert replay(run.trace).fingerprint() == run.trace.fingerprint()


class TestExpectedRounds:
    def test_sweep_terminates_and_is_clean(self):
        sweep = expected_rounds(40, master_seed=0)
        assert sweep.violations == ()
        assert sweep.ok(min_termination=0.9)
        assert sweep.ci_low <= sweep.mean_rounds <= sweep.ci_high

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 1000))
    def test_sharded_sweep_is_bit_identical(self, master_seed):
        solo = expected_rounds(24, master_seed, workers=1)
        duo = expected_rounds(24, master_seed, workers=2)
        assert solo == duo  # frozen dataclass: bit-for-bit equality

    def test_three_workers_match_too(self):
        assert expected_rounds(30, 7, workers=1) == expected_rounds(
            30, 7, workers=3
        )

    def test_biased_coin_sweep_reports_zero_termination(self):
        sweep = expected_rounds(10, 0, biased_coin=True, max_events=300)
        assert sweep.termination_rate == 0.0
        assert sweep.violations == ()  # still safe on every seed
        assert not sweep.ok()

    def test_rejects_unknown_confidence(self):
        with pytest.raises(ValueError):
            expected_rounds(10, 0, confidence=0.42)
