"""Tests for Ben-Or randomized consensus: safety always, liveness w.p. 1."""

import pytest

from repro.asynchronous import run_ben_or, termination_statistics
from repro.core import ModelError


class TestSafety:
    @pytest.mark.parametrize("seed", range(15))
    def test_agreement_under_random_schedules(self, seed):
        result = run_ben_or(3, 1, [0, 1, seed % 2], seed=seed)
        assert result.agreement

    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_with_crash(self, seed):
        result = run_ben_or(
            5, 2, [0, 1, 0, 1, 1], seed=seed,
            crash_plan={4: 3 * seed, 3: 7 * seed + 1},
        )
        assert result.agreement

    def test_validity_unanimous_inputs(self):
        for v in (0, 1):
            result = run_ben_or(4, 1, [v] * 4, seed=9)
            assert result.validity
            live = [p for p in range(4) if p not in result.crashed]
            assert all(result.decisions[p] == v for p in live)

    def test_unanimous_decides_in_first_phase(self):
        result = run_ben_or(4, 1, [1, 1, 1, 1], seed=3)
        live = [p for p in range(4) if p not in result.crashed]
        assert all(result.phases[p] == 1 for p in live)


class TestLiveness:
    def test_high_decision_rate(self):
        stats = termination_statistics(4, 1, trials=30)
        assert stats["decided_fraction"] >= 0.9

    def test_reproducible(self):
        a = run_ben_or(3, 1, [0, 1, 1], seed=42)
        b = run_ben_or(3, 1, [0, 1, 1], seed=42)
        assert a.decisions == b.decisions
        assert a.events == b.events

    def test_different_seeds_vary_schedule(self):
        events = {run_ben_or(3, 1, [0, 1, 1], seed=s).events for s in range(6)}
        assert len(events) > 1


class TestContract:
    def test_rejects_overpowered_adversary(self):
        with pytest.raises(ModelError):
            run_ben_or(3, 1, [0, 1, 1], crash_plan={0: 1, 1: 2})

    def test_rejects_wrong_input_count(self):
        with pytest.raises(ModelError):
            run_ben_or(3, 1, [0, 1])
