"""Integration tests: the subsystems composed and cross-checked.

These exercise flows that span modules: I/O-automaton composition driving
a protocol stack, view extraction over shared-memory executions,
certificate revalidation across every engine, and the generic bivalence
machinery running against two different substrate kinds.
"""


from repro.core import (
    Execution,
    RoundRobinScheduler,
    Signature,
    TableAutomaton,
    ViewExtractor,
    compose,
    explore,
)


class TestComposedProtocolStack:
    """A sender, a one-slot channel and a receiver as composed automata."""

    def build(self):
        sender = TableAutomaton(
            Signature(outputs=frozenset({("put", 0), ("put", 1)}),
                      inputs=frozenset({"ack"})),
            initial=[(0, "ready")],
            transitions={
                ((0, "ready"), ("put", 0)): [(0, "wait")],
                ((1, "ready"), ("put", 1)): [(1, "wait")],
                ((0, "wait"), "ack"): [(1, "ready")],
                ((1, "wait"), "ack"): [(1, "done")],
            },
            name="sender",
        )
        channel = TableAutomaton(
            Signature(inputs=frozenset({("put", 0), ("put", 1)}),
                      outputs=frozenset({("get", 0), ("get", 1)})),
            initial=["empty"],
            transitions={
                ("empty", ("put", 0)): [("holding", 0)],
                ("empty", ("put", 1)): [("holding", 1)],
                (("holding", 0), ("get", 0)): ["empty"],
                (("holding", 1), ("get", 1)): ["empty"],
            },
            name="channel",
        )
        receiver = TableAutomaton(
            Signature(inputs=frozenset({("get", 0), ("get", 1)}),
                      outputs=frozenset({"ack"})),
            initial=[()],
            transitions={
                ((), ("get", 0)): [((0,),)],
                (((0,),), "ack"): [(0,)],
                ((0,), ("get", 1)): [((0, 1),)],
                (((0, 1),), "ack"): [(0, 1)],
            },
            name="receiver",
        )
        return compose(sender, channel, receiver, name="stack")

    def test_round_robin_delivers_both_items(self):
        system = self.build()
        execution = RoundRobinScheduler(system).run(system, max_steps=50)
        sender_state = execution.last_state[0]
        receiver_state = execution.last_state[2]
        assert sender_state == (1, "done")
        assert receiver_state == (0, 1)

    def test_trace_alternates_put_get_ack(self):
        system = self.build()
        execution = RoundRobinScheduler(system).run(system, max_steps=50)
        trace = execution.trace()
        assert trace == (
            ("put", 0), ("get", 0), "ack", ("put", 1), ("get", 1), "ack"
        )

    def test_exploration_finds_no_stray_states(self):
        system = self.build()
        reachable = explore(system).reachable
        # The stack is a strict pipeline: small, known state count.
        assert len(reachable) == 7


class TestViewsOverSharedMemory:
    """The core indistinguishability machinery applied to a mutex system."""

    def test_remainder_process_cannot_see_the_other_side(self):
        from repro.shared_memory.mutex import peterson_system

        system = peterson_system()
        extractor = ViewExtractor(
            local_state=lambda state, who: system.local_state(state, who),
            participates=lambda action, who: (
                isinstance(action, tuple) and who in action
            ),
        )
        base = Execution.initial(system)
        # p0 requests and takes two protocol steps; p1 does nothing.
        e1 = (
            base.extend(("try", "p0"))
            .extend(("step", "p0"))
            .extend(("step", "p0"))
        )
        # An alternative where p0 takes only one step.
        e2 = base.extend(("try", "p0")).extend(("step", "p0"))
        assert extractor.indistinguishable(e1, e2, "p1")
        assert not extractor.indistinguishable(e1, e2, "p0")


class TestCertificateRevalidation:
    """Every engine's certificate must replay independently."""

    def test_all_replayable_certificates(self):
        from repro.datalink import bounded_header_attack, crash_attack
        from repro.shared_memory import (
            burns_lynch_attack,
            naive_spin_lock_system,
        )

        for certificate in (
            crash_attack(),
            bounded_header_attack(2),
            burns_lynch_attack(naive_spin_lock_system()),
        ):
            certificate.revalidate()

    def test_bound_certificates_hold(self):
        from repro.rings import ring_election_certificate

        cert = ring_election_certificate(sizes=(8, 16, 32))
        cert.revalidate()


class TestBivalenceAcrossSubstrates:
    """One valency engine, two substrates: message passing and objects."""

    def test_same_analyzer_api(self):
        from repro.asynchronous import AsyncConsensusSystem, QuorumVote
        from repro.impossibility import ValencyAnalyzer
        from repro.registers import ObjectConsensusSystem, RegisterConsensus

        mp = ValencyAnalyzer(AsyncConsensusSystem(QuorumVote(), 3))
        sm = ValencyAnalyzer(ObjectConsensusSystem(RegisterConsensus(), 2))
        assert mp.find_agreement_violation() is not None
        assert sm.find_agreement_violation() is not None

    def test_bivalence_in_both_worlds(self):
        from repro.asynchronous import AsyncConsensusSystem, QuorumVote
        from repro.impossibility import ValencyAnalyzer
        from repro.registers import ObjectConsensusSystem, RegisterConsensus

        mp_system = AsyncConsensusSystem(QuorumVote(), 3)
        mp = ValencyAnalyzer(mp_system)
        assert mp.is_bivalent(mp_system.configuration_for((0, 1, 1)))

        sm_system = ObjectConsensusSystem(RegisterConsensus(), 2)
        sm = ValencyAnalyzer(sm_system)
        assert sm.is_bivalent(sm_system.configuration_for((0, 1)))
