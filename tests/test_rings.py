"""Tests for ring computations: elections, message bounds, time-slice (E13)."""

import math
import random

import pytest

from repro.rings import (
    best_case_ring,
    bit_reversal_ring,
    hs_election,
    lcr_election,
    message_series,
    n_log_n,
    order_equivalent_rotations,
    order_equivalent_segments,
    ring_election_certificate,
    timeslice_election,
    worst_case_ring,
)


class TestLCR:
    @pytest.mark.parametrize("n", [2, 3, 8, 17])
    def test_elects_maximum(self, n):
        rng = random.Random(n)
        idents = list(range(1, n + 1))
        rng.shuffle(idents)
        result = lcr_election(idents)
        assert result.election_complete
        assert idents[result.leaders[0]] == n

    def test_worst_case_quadratic(self):
        """Descending IDs: probe messages sum to exactly n(n+1)/2, plus n
        announcements."""
        for n in (8, 16, 32):
            result = lcr_election(worst_case_ring(n))
            assert result.messages == n * (n + 1) // 2 + n

    def test_best_case_linear(self):
        for n in (8, 16, 32):
            result = lcr_election(best_case_ring(n))
            assert result.messages == 3 * n - 1

    def test_deterministic_under_seed(self):
        a = lcr_election(worst_case_ring(8), seed=5)
        b = lcr_election(worst_case_ring(8), seed=5)
        assert a.messages == b.messages and a.steps == b.steps


class TestHS:
    @pytest.mark.parametrize("n", [2, 3, 8, 20])
    def test_elects_maximum(self, n):
        rng = random.Random(n * 7)
        idents = list(range(1, n + 1))
        rng.shuffle(idents)
        result = hs_election(idents)
        assert result.elected_exactly_one
        assert idents[result.leaders[0]] == n

    def test_n_log_n_upper_bound(self):
        """Textbook bound: at most 8 n (log n + 1) + announcement traffic."""
        for n in (8, 16, 32, 64):
            result = hs_election(worst_case_ring(n))
            assert result.messages <= 8 * n * (math.log2(n) + 1) + n

    def test_beats_lcr_on_large_descending_rings(self):
        """The crossover the complexity classes predict."""
        n = 64
        assert (
            hs_election(worst_case_ring(n)).messages
            < lcr_election(worst_case_ring(n)).messages
        )

    def test_lcr_beats_hs_on_small_rings(self):
        n = 8
        assert (
            lcr_election(worst_case_ring(n)).messages
            < hs_election(worst_case_ring(n)).messages
        )


class TestBitReversalRings:
    def test_survey_example(self):
        """The survey's example ring 0,4,2,6,1,5,3,7 (plus one)."""
        assert bit_reversal_ring(3) == [1, 5, 3, 7, 2, 6, 4, 8]

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_segments_are_order_equivalent(self, k):
        ring = bit_reversal_ring(k)
        for j in range(1, k):
            length = 2 ** j
            count = order_equivalent_segments(ring, length)
            assert count == len(ring) // length  # ALL segments equivalent

    def test_random_rings_are_not_this_symmetric(self):
        rng = random.Random(0)
        ring = list(range(1, 17))
        rng.shuffle(ring)
        assert order_equivalent_segments(ring, 4) < 4

    def test_rotation_equivalence_of_periodic_ring(self):
        """Full-ring rotation equivalence needs a periodic arrangement
        (with distinct IDs the split pair always betrays the rotation)."""
        assert order_equivalent_rotations([1, 2, 1, 2], 2)
        assert not order_equivalent_rotations(bit_reversal_ring(3), 4)


class TestMessageSeries:
    def test_hs_series_is_n_log_n_shaped(self):
        sizes = (8, 16, 32, 64)
        series = message_series(
            lambda r: hs_election(r), sizes,
            lambda n: bit_reversal_ring(int(math.log2(n))),
        )
        for n in sizes:
            assert n_log_n(n, 0.5) <= series[n] <= n_log_n(n, 8) + 4 * n

    def test_certificate_holds(self):
        cert = ring_election_certificate(sizes=(8, 16, 32))
        cert.revalidate()
        assert cert.holds()


class TestTimeSlice:
    """The Frederickson–Lynch counterexample algorithm (§2.4.2)."""

    def test_linear_messages(self):
        for idents in ([3, 5, 4, 7], [2, 9, 6, 4, 8], [1, 2, 3, 4]):
            result = timeslice_election(idents)
            assert result.election_complete
            # Exactly n token hops: O(n) messages, beating n log n.
            assert result.messages == len(idents)

    def test_minimum_id_wins(self):
        result = timeslice_election([3, 5, 4, 7])
        assert result.leaders == [0]

    def test_time_grows_with_minimum_id(self):
        fast = timeslice_election([1, 90, 91, 92]).rounds
        slow = timeslice_election([12, 90, 91, 92]).rounds
        assert slow > fast
        assert slow >= 11 * 4  # window for ID 12 opens at round 45

    def test_rejects_nonpositive_ids(self):
        with pytest.raises(ValueError):
            timeslice_election([0, 1, 2])
