"""Tests for logical clocks and the clock synchronization bound (E10)."""

import pytest

from repro.clocks import (
    Computation,
    Event,
    check_clock_condition,
    check_vector_condition,
    do_nothing_algorithm,
    follow_zero_algorithm,
    lundelius_lynch_algorithm,
    optimal_bound,
    run_clock_sync,
    shifted_executions,
    stretching_bound,
    vector_less,
    worst_case_skew,
)
from repro.core import ModelError


def diamond_computation():
    """p sends m1 to q; q sends m2 to p; plus local events."""
    return Computation([
        Event("p", 0, "send", "m1"),
        Event("p", 1, "local"),
        Event("p", 2, "recv", "m2"),
        Event("q", 0, "recv", "m1"),
        Event("q", 1, "send", "m2"),
    ])


class TestHappensBefore:
    def test_program_order(self):
        c = diamond_computation()
        e = c.process_events("p")
        assert c.happens_before(e[0], e[1])
        assert not c.happens_before(e[1], e[0])

    def test_message_order(self):
        c = diamond_computation()
        send = c.process_events("p")[0]
        recv = c.process_events("q")[0]
        assert c.happens_before(send, recv)

    def test_transitivity_through_messages(self):
        c = diamond_computation()
        first_send = c.process_events("p")[0]
        final_recv = c.process_events("p")[2]
        assert c.happens_before(first_send, final_recv)

    def test_concurrency(self):
        c = diamond_computation()
        p_local = c.process_events("p")[1]
        q_recv = c.process_events("q")[0]
        assert c.concurrent(p_local, q_recv)

    def test_invalid_computations_rejected(self):
        with pytest.raises(ModelError):
            Computation([Event("p", 0, "recv", "ghost")])
        with pytest.raises(ModelError):
            Computation([
                Event("p", 0, "send", "m"),
                Event("q", 0, "send", "m"),
            ])
        with pytest.raises(ModelError):
            Computation([Event("p", 1, "local")])  # wrong index


class TestClocks:
    def test_lamport_clock_condition(self):
        assert check_clock_condition(diamond_computation())

    def test_vector_clock_biconditional(self):
        assert check_vector_condition(diamond_computation())

    def test_lamport_clocks_are_weaker_than_vector(self):
        """Lamport timestamps order some concurrent events; vectors don't."""
        c = diamond_computation()
        stamps = c.lamport_timestamps()
        clocks = c.vector_clocks()
        p_local = c.process_events("p")[1]
        q_send = c.process_events("q")[1]
        assert c.concurrent(p_local, q_send)
        assert stamps[p_local] != stamps[q_send] or True  # may be ordered
        assert not vector_less(clocks[p_local], clocks[q_send])
        assert not vector_less(clocks[q_send], clocks[p_local])


class TestClockSync:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_lundelius_lynch_achieves_the_bound_exactly(self, n):
        assert worst_case_skew(lundelius_lynch_algorithm, n) == pytest.approx(
            optimal_bound(n)
        )

    @pytest.mark.parametrize("n", [3, 4])
    def test_follow_zero_is_suboptimal(self, n):
        assert worst_case_skew(follow_zero_algorithm, n) == pytest.approx(1.0)
        assert worst_case_skew(follow_zero_algorithm, n) > optimal_bound(n)

    def test_shifted_executions_indistinguishable(self):
        run_a, run_b = shifted_executions(lundelius_lynch_algorithm, 3, 1.0, 0)
        assert run_a.observations == run_b.observations
        assert run_a.corrections == run_b.corrections  # same inputs, same outputs
        # Yet the true offsets differ by epsilon for the shifted process.
        assert run_b.offsets[0] - run_a.offsets[0] == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "algorithm",
        [lundelius_lynch_algorithm, follow_zero_algorithm, do_nothing_algorithm],
    )
    def test_stretching_forces_half_epsilon_on_any_algorithm(self, algorithm):
        assert stretching_bound(algorithm, 3, 1.0) >= 0.5 - 1e-9

    def test_skew_computation(self):
        delays = {(i, j): 0.5 for i in range(2) for j in range(2) if i != j}
        run = run_clock_sync(do_nothing_algorithm, [0.0, 0.3], delays, 1.0)
        assert run.skew == pytest.approx(0.3)

    def test_delays_validated(self):
        delays = {(0, 1): 2.0, (1, 0): 0.0}
        with pytest.raises(ModelError):
            run_clock_sync(do_nothing_algorithm, [0.0, 0.0], delays, 1.0)
