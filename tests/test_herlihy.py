"""Tests for the wait-free consensus hierarchy (E11)."""

import pytest

from repro.registers import (
    CasConsensus,
    ObjectConsensusSystem,
    QueueConsensus2,
    RegisterConsensus,
    TasConsensus2,
    TasConsensus3,
    hierarchy_table,
    wait_free_verdict,
)


class TestRegisterConsensus:
    def test_fails_agreement_at_n2(self):
        verdict = wait_free_verdict(ObjectConsensusSystem(RegisterConsensus(), 2))
        assert not verdict.solves_consensus
        assert verdict.failure_kind == "agreement"

    def test_failure_witness_is_a_real_disagreement(self):
        system = ObjectConsensusSystem(RegisterConsensus(), 2)
        verdict = wait_free_verdict(system)
        decisions = system.decisions(verdict.failure_witness)
        assert len(set(decisions.values())) == 2


class TestTasConsensus:
    def test_solves_two_process_consensus(self):
        verdict = wait_free_verdict(ObjectConsensusSystem(TasConsensus2(), 2))
        assert verdict.solves_consensus

    def test_exhaustive_over_all_schedules(self):
        verdict = wait_free_verdict(ObjectConsensusSystem(TasConsensus2(), 2))
        assert verdict.configurations > 10  # the space was really explored

    def test_three_process_extension_fails(self):
        verdict = wait_free_verdict(ObjectConsensusSystem(TasConsensus3(), 3))
        assert not verdict.solves_consensus
        assert verdict.failure_kind == "agreement"


class TestQueueConsensus:
    def test_solves_two_process_consensus(self):
        verdict = wait_free_verdict(ObjectConsensusSystem(QueueConsensus2(), 2))
        assert verdict.solves_consensus


class TestCasConsensus:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_solves_consensus_for_any_n(self, n):
        verdict = wait_free_verdict(ObjectConsensusSystem(CasConsensus(), n))
        assert verdict.solves_consensus

    def test_single_access_wait_freedom(self):
        """Every process decides after exactly one shared access."""
        system = ObjectConsensusSystem(CasConsensus(), 3)
        config = system.configuration_for((1, 0, 1))
        for pid in range(3):
            after = system.apply(config, ("step", pid))
            assert pid in system.decisions(after)


class TestHierarchyTable:
    def test_matches_herlihy(self):
        table = {(v.protocol_name, v.n): v.solves_consensus
                 for v in hierarchy_table()}
        assert table == {
            ("register-consensus", 2): False,
            ("tas-consensus-2", 2): True,
            ("tas-consensus-3", 3): False,
            ("queue-consensus-2", 2): True,
            ("cas-consensus", 2): True,
            ("cas-consensus", 3): True,
        }

    def test_separation_implies_non_implementability(self):
        """The survey's §2.3 point: TAS solves 2-process consensus and
        registers do not, hence no wait-free register implementation of
        TAS exists.  The premise pair is exactly what we verified."""
        tas = wait_free_verdict(ObjectConsensusSystem(TasConsensus2(), 2))
        reg = wait_free_verdict(ObjectConsensusSystem(RegisterConsensus(), 2))
        assert tas.solves_consensus and not reg.solves_consensus
