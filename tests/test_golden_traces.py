"""Golden-trace regression suite: canonical runs must not drift.

Every canonical run in :mod:`tests.golden_runs` is recomputed and
compared field by field against the pinned fixture.  A drift failure
prints a readable per-run diff (which field moved, expected vs actual)
plus the regen command — an intentional schema or simulator change is
re-pinned with::

    PYTHONPATH=src python -m tests.golden_runs --regen

The suite also anchors the parallel fabric: a sharded campaign must
reproduce the exact pinned counterexample fingerprint.
"""

import pytest

from repro.chaos.campaign import run_campaign
from repro.chaos.targets import FloodSetCrashTarget

from .golden_runs import CANONICAL_RUNS, describe, load_fixture

FIXTURE = load_fixture()
REGEN_HINT = (
    "if the change is intentional, re-pin with "
    "`PYTHONPATH=src python -m tests.golden_runs --regen`"
)


def _drift_report(name: str, expected: dict, actual: dict) -> str:
    lines = [f"golden trace {name!r} drifted:"]
    for field in sorted(set(expected) | set(actual)):
        want, got = expected.get(field), actual.get(field)
        if want != got:
            lines.append(f"  {field}:")
            lines.append(f"    pinned:  {want!r}")
            lines.append(f"    current: {got!r}")
    lines.append(REGEN_HINT)
    return "\n".join(lines)


def test_fixture_covers_every_canonical_run():
    assert sorted(FIXTURE) == sorted(CANONICAL_RUNS), (
        "fixture and CANONICAL_RUNS registry disagree; " + REGEN_HINT
    )


@pytest.mark.parametrize("name", sorted(CANONICAL_RUNS))
def test_golden_trace(name):
    actual = describe(CANONICAL_RUNS[name]())
    expected = FIXTURE[name]
    assert actual == expected, _drift_report(name, expected, actual)


def test_parallel_campaign_reproduces_golden_counterexample():
    """workers=3 campaign hits the exact pinned counterexample bytes."""
    report = run_campaign(
        targets=[FloodSetCrashTarget()], runs=10, master_seed=0, workers=3
    )
    assert report.counterexamples, "sharded campaign lost the planted bug"
    fingerprint = report.counterexamples[0].trace.fingerprint()
    pinned = FIXTURE["chaos-floodset-counterexample"]["fingerprint"]
    assert fingerprint == pinned, (
        "sharded campaign produced a different counterexample than the "
        f"pinned serial one ({fingerprint} != {pinned}); the parallel "
        "fabric broke bit-identity"
    )
