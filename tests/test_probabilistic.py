"""Tests for the Karlin–Yao randomized agreement bound (E17)."""


from repro.consensus import (
    CoinFlipAgreement,
    karlin_yao_certificate,
    karlin_yao_experiment,
)


class TestCoinCoupling:
    def test_per_trial_sum_never_exceeds_two(self):
        """The theorem's combinatorial core: for every coin outcome, at
        most two of the three spliced scenarios succeed."""
        result = karlin_yao_experiment(trials=120)
        assert result.max_per_trial_sum <= 2

    def test_all_three_scenarios_sometimes_succeed_individually(self):
        """The bound is about simultaneity: each scenario individually
        succeeds with decent probability."""
        result = karlin_yao_experiment(trials=120)
        assert all(rate > 0.2 for rate in result.success_rates.values())

    def test_worst_scenario_below_two_thirds(self):
        result = karlin_yao_experiment(trials=200)
        assert result.worst_scenario_rate <= 2.0 / 3.0 + 0.08

    def test_reproducible(self):
        a = karlin_yao_experiment(trials=40)
        b = karlin_yao_experiment(trials=40)
        assert a.success_rates == b.success_rates

    def test_certificate(self):
        cert = karlin_yao_certificate(trials=100)
        cert.revalidate()
        assert cert.details["max_per_trial_sum"] <= 2


class TestSeededSpawn:
    def test_tagged_copies_draw_independent_coins(self):
        protocol = CoinFlipAgreement(trial_seed=5)
        a = protocol.spawn_tagged(0, 3, 1, 0, tag=0)
        b = protocol.spawn_tagged(0, 3, 1, 0, tag=1)
        # Different tags, independent streams (almost surely different).
        draws_a = [a.rng.randrange(1000) for _ in range(4)]
        draws_b = [b.rng.randrange(1000) for _ in range(4)]
        assert draws_a != draws_b

    def test_same_tag_same_coins(self):
        protocol = CoinFlipAgreement(trial_seed=5)
        a = protocol.spawn_tagged(1, 3, 1, 0, tag=0)
        b = protocol.spawn_tagged(1, 3, 1, 0, tag=0)
        assert [a.rng.randrange(1000) for _ in range(4)] == [
            b.rng.randrange(1000) for _ in range(4)
        ]
