"""Tests for the firing squad: simultaneity under crashes (§2.2.1, [31])."""

import pytest

from repro.consensus import (
    FloodingFiringSquad,
    HastyFiringSquad,
    find_simultaneity_violation,
    run_synchronous,
)


class TestFloodingSquad:
    def test_fault_free_everyone_fires_together(self):
        run = run_synchronous(FloodingFiringSquad(), [1, 0, 0, 0], t=1)
        rounds = set(run.decisions.values())
        assert len(rounds) == 1
        assert None not in rounds

    @pytest.mark.parametrize("t,n", [(1, 3), (1, 4), (2, 4)])
    def test_simultaneity_exhaustive(self, t, n):
        """Over every crash pattern with <= t faults, all correct
        processes fire in the same round."""
        result = find_simultaneity_violation(FloodingFiringSquad(), n=n, t=t)
        assert result.violation_adversary is None
        # The whole crash-pattern space was enumerated: 1 + sum over fault
        # sets of (rounds * 2^(n-1)) patterns per faulty process.
        assert result.runs_checked >= 49

    def test_firing_round_is_origin_plus_t_plus_two(self):
        run = run_synchronous(FloodingFiringSquad(), [1, 0, 0], t=1)
        assert set(run.decisions.values()) == {3}  # t + 2 with origin 0

    def test_initiator_position_is_irrelevant(self):
        for initiator in range(4):
            result = find_simultaneity_violation(
                FloodingFiringSquad(), n=4, t=1, initiator=initiator
            )
            assert result.violation_adversary is None


class TestHastySquad:
    def test_split_firing_found(self):
        """Firing on first contact is splittable by one crash — the relay
        floor behind the firing-squad lower bounds."""
        result = find_simultaneity_violation(HastyFiringSquad(), n=4, t=1)
        assert result.violation_adversary is not None
        fired_rounds = {r for r in result.firing_rounds.values()}
        assert len(fired_rounds) > 1

    def test_fault_free_is_fine(self):
        """The hasty protocol only breaks under faults."""
        run = run_synchronous(HastyFiringSquad(), [1, 0, 0, 0], t=1)
        assert len(set(run.decisions.values())) == 1
