"""Tests for histories and the linearizability checker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.registers import (
    HistoryRecorder,
    Operation,
    QueueSpec,
    RegisterSpec,
    check_register_history,
    is_linearizable,
)


def op(process, kind, argument, result, start, end):
    return Operation(process, kind, argument, result, start, end)


class TestOperation:
    def test_response_before_invocation_rejected(self):
        with pytest.raises(ValueError):
            op("p", "read", None, 0, 5, 4)

    def test_precedence(self):
        a = op("p", "write", 1, None, 0, 1)
        b = op("q", "read", None, 1, 2, 3)
        c = op("r", "read", None, 1, 0.5, 2.5)
        assert a.precedes(b)
        assert not a.precedes(c)  # overlapping
        assert not b.precedes(a)


class TestRegisterLinearizability:
    def test_sequential_history_linearizable(self):
        history = [
            op("p", "write", 5, None, 0, 1),
            op("q", "read", None, 5, 2, 3),
        ]
        assert check_register_history(history) is not None

    def test_stale_read_after_write_not_linearizable(self):
        history = [
            op("p", "write", 5, None, 0, 1),
            op("q", "read", None, 0, 2, 3),  # reads the overwritten value
        ]
        assert check_register_history(history, initial=0) is None

    def test_overlapping_read_may_see_either(self):
        for seen in (0, 5):
            history = [
                op("p", "write", 5, None, 0, 10),
                op("q", "read", None, seen, 1, 2),
            ]
            assert check_register_history(history, initial=0) is not None

    def test_new_old_inversion_not_linearizable(self):
        """The atomicity violation regular registers permit."""
        history = [
            op("w", "write", 1, None, 0, 10),
            op("a", "read", None, 1, 1, 2),   # sees new
            op("b", "read", None, 0, 3, 4),   # then sees old
        ]
        assert check_register_history(history, initial=0) is None

    def test_witness_order_is_legal(self):
        history = [
            op("w", "write", 1, None, 0, 10),
            op("a", "read", None, 0, 1, 2),
            op("b", "read", None, 1, 3, 4),
        ]
        witness = check_register_history(history, initial=0)
        assert witness is not None
        spec = RegisterSpec(0)
        for operation in witness:
            result = spec.apply(operation.kind, operation.argument)
            if operation.kind == "read":
                assert result == operation.result


class TestQueueLinearizability:
    def test_fifo_respected(self):
        history = [
            op("p", "enqueue", "a", None, 0, 1),
            op("p", "enqueue", "b", None, 2, 3),
            op("q", "dequeue", None, "a", 4, 5),
            op("q", "dequeue", None, "b", 6, 7),
        ]
        assert is_linearizable(history, QueueSpec) is not None

    def test_fifo_violation_rejected(self):
        history = [
            op("p", "enqueue", "a", None, 0, 1),
            op("p", "enqueue", "b", None, 2, 3),
            op("q", "dequeue", None, "b", 4, 5),  # overtakes "a"
        ]
        assert is_linearizable(history, QueueSpec) is None

    def test_concurrent_enqueues_either_order(self):
        history = [
            op("p", "enqueue", "a", None, 0, 10),
            op("q", "enqueue", "b", None, 0, 10),
            op("r", "dequeue", None, "b", 11, 12),
            op("r", "dequeue", None, "a", 13, 14),
        ]
        assert is_linearizable(history, QueueSpec) is not None


class TestHistoryRecorder:
    def test_invoke_respond_cycle(self):
        rec = HistoryRecorder()
        rec.invoke("p", "read", None)
        operation = rec.respond("p", 42)
        assert operation.result == 42
        assert operation.invoked_at < operation.responded_at
        assert rec.history == [operation]

    def test_double_invoke_rejected(self):
        rec = HistoryRecorder()
        rec.invoke("p", "read", None)
        with pytest.raises(ValueError):
            rec.invoke("p", "read", None)


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                    max_size=5))
    def test_sequential_register_runs_always_linearizable(self, values):
        """Any strictly sequential run of writes and faithful reads is
        linearizable — a soundness property of the checker."""
        history = []
        time = 0.0
        for i, v in enumerate(values):
            history.append(op("w", "write", v, None, time, time + 1))
            time += 2
            result = v
            history.append(op("r", "read", None, result, time, time + 1))
            time += 2
        assert check_register_history(history, initial=0) is not None

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_wrong_final_read_never_linearizable(self, wrong):
        history = [
            op("w", "write", wrong + 1, None, 0, 1),
            op("r", "read", None, wrong + 2, 2, 3),
        ]
        assert check_register_history(history, initial=0) is None
