"""Property-based tests (hypothesis) over the library's core invariants."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import ByzantineAdversary, EIGByzantine, run_synchronous
from repro.impossibility import (
    guaranteed_collision_count,
    input_vector_chain,
    matrix_flip_chain,
    verify_chain,
)
from repro.registers import Operation, RegisterSpec, is_linearizable
from repro.rings import hs_election, lcr_election


# ---------------------------------------------------------------------------
# The linearizability checker vs. a brute-force oracle
# ---------------------------------------------------------------------------

def brute_force_linearizable(history, initial=0):
    """Oracle: try every permutation respecting real-time order."""
    n = len(history)
    for perm in itertools.permutations(range(n)):
        ok = True
        for i in range(n):
            for j in range(i + 1, n):
                if history[perm[j]].precedes(history[perm[i]]):
                    ok = False
                    break
            if not ok:
                break
        if not ok:
            continue
        spec = RegisterSpec(initial)
        legal = True
        for index in perm:
            op = history[index]
            result = spec.apply(op.kind, op.argument)
            if op.kind == "read" and result != op.result:
                legal = False
                break
        if legal:
            return True
    return False


@st.composite
def small_register_histories(draw):
    """Random histories of <= 4 operations over values {0, 1}."""
    count = draw(st.integers(min_value=1, max_value=4))
    ops = []
    for i in range(count):
        start = draw(st.floats(min_value=0, max_value=10))
        length = draw(st.floats(min_value=0.1, max_value=5))
        kind = draw(st.sampled_from(["read", "write"]))
        if kind == "write":
            ops.append(Operation(f"p{i}", "write",
                                 draw(st.integers(0, 1)), None,
                                 start, start + length))
        else:
            ops.append(Operation(f"p{i}", "read", None,
                                 draw(st.integers(0, 1)),
                                 start, start + length))
    return ops


class TestLinearizabilityOracle:
    @settings(max_examples=120, deadline=None)
    @given(small_register_histories())
    def test_checker_agrees_with_brute_force(self, history):
        fast = is_linearizable(history, lambda: RegisterSpec(0)) is not None
        slow = brute_force_linearizable(history, initial=0)
        assert fast == slow


# ---------------------------------------------------------------------------
# Ring elections on arbitrary ID arrangements
# ---------------------------------------------------------------------------

class TestElectionProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.permutations(list(range(1, 9))))
    def test_lcr_always_elects_the_maximum(self, idents):
        result = lcr_election(list(idents))
        assert result.election_complete
        assert idents[result.leaders[0]] == max(idents)

    @settings(max_examples=30, deadline=None)
    @given(st.permutations(list(range(1, 9))))
    def test_hs_always_elects_the_maximum(self, idents):
        result = hs_election(list(idents))
        assert result.elected_exactly_one
        assert idents[result.leaders[0]] == max(idents)

    @settings(max_examples=30, deadline=None)
    @given(st.permutations(list(range(1, 9))))
    def test_lcr_message_bounds(self, idents):
        n = len(idents)
        result = lcr_election(list(idents))
        # Probes alone lie between n and n(n+1)/2; announcements add n-ish.
        assert n <= result.messages <= n * (n + 1) // 2 + n


# ---------------------------------------------------------------------------
# Chain builders
# ---------------------------------------------------------------------------

class TestChainProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_input_chain_shape(self, n):
        chain = input_vector_chain(n)
        assert len(chain) == n + 1
        assert chain[0] == tuple([0] * n)
        assert chain[-1] == tuple([1] * n)
        assert verify_chain(
            chain,
            linked=lambda a, b: sum(x != y for x, y in zip(a, b)) == 1,
        ) is None

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=4))
    def test_matrix_chain_shape(self, rows, cols):
        chain = matrix_flip_chain(rows, cols)
        assert len(chain) == rows * cols + 1
        assert verify_chain(
            chain,
            linked=lambda a, b: sum(
                x != y for ra, rb in zip(a, b) for x, y in zip(ra, rb)
            ) == 1,
        ) is None

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=10))
    def test_pigeonhole_count(self, items, holes):
        count = guaranteed_collision_count(items, holes)
        assert (count - 1) * holes < items <= count * holes


# ---------------------------------------------------------------------------
# Byzantine agreement under arbitrary first-round lies
# ---------------------------------------------------------------------------

class TestEIGRobustness:
    @settings(max_examples=25, deadline=None)
    @given(
        st.tuples(*[st.integers(0, 1) for _ in range(4)]),
        st.lists(st.integers(0, 1), min_size=3, max_size=3),
    )
    def test_agreement_under_arbitrary_lies(self, inputs, lies):
        """Whatever the Byzantine process tells each honest peer in round
        one, the honest processes agree (n = 4 > 3t = 3)."""
        lie_table = {dest: lies[i] for i, dest in enumerate(range(3))}

        def behaviour(rnd, src, dest, honest):
            if rnd == 1:
                return (((), lie_table[dest]),)
            return honest

        adversary = ByzantineAdversary([3], behaviour)
        run = run_synchronous(EIGByzantine(), list(inputs),
                              adversary=adversary, t=1)
        assert run.agreement_holds()
        assert run.validity_holds()
