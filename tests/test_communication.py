"""Tests for two-party communication complexity (E21, §2.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.communication import (
    complexity_report,
    constant_matrix,
    equality_matrix,
    exact_complexity,
    fooling_set_bound,
    function_matrix,
    greater_than_matrix,
    largest_fooling_set,
    log_rank_bound,
    parity_matrix,
)


class TestExactComplexity:
    def test_constant_function_is_free(self):
        assert exact_complexity(constant_matrix(2)) == 0

    @pytest.mark.parametrize("bits,expected", [(1, 2), (2, 3)])
    def test_equality_costs_bits_plus_one(self, bits, expected):
        assert exact_complexity(equality_matrix(bits)) == expected

    def test_greater_than_two_bits(self):
        assert exact_complexity(greater_than_matrix(2)) == 3

    def test_parity_costs_two(self):
        """One bit each way, whatever the input size."""
        assert exact_complexity(parity_matrix(1)) == 2
        assert exact_complexity(parity_matrix(2)) == 2

    def test_single_bit_and(self):
        m = function_matrix(lambda x, y: x & y, 2, 2)
        assert exact_complexity(m) == 2


class TestLowerBounds:
    def test_equality_fooling_set_is_the_diagonal(self):
        fooling = largest_fooling_set(equality_matrix(2))
        assert sorted(fooling) == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_fooling_bound_equality(self):
        assert fooling_set_bound(equality_matrix(2)) == 2

    def test_rank_bound_equality(self):
        # The identity matrix has full rank 2^bits.
        assert log_rank_bound(equality_matrix(2)) == 2

    def test_bounds_sandwich(self):
        for matrix in (equality_matrix(2), greater_than_matrix(2),
                       parity_matrix(2)):
            report = complexity_report(matrix)
            assert report["fooling_bound"] <= report["exact"]
            assert report["log_rank_bound"] <= report["exact"]
            assert report["exact"] <= report["trivial_upper"]

    def test_constant_has_no_fooling_pairs(self):
        assert fooling_set_bound(constant_matrix(2)) == 0


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 1), min_size=3, max_size=3),
                    min_size=3, max_size=3))
    def test_bounds_sandwich_on_random_matrices(self, rows):
        matrix = tuple(tuple(r) for r in rows)
        exact = exact_complexity(matrix)
        assert fooling_set_bound(matrix) <= exact
        assert log_rank_bound(matrix) <= exact

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 1), min_size=2, max_size=4),
                    min_size=2, max_size=4).filter(
                        lambda rows: len({len(r) for r in rows}) == 1))
    def test_monochromatic_iff_zero_cost(self, rows):
        matrix = tuple(tuple(r) for r in rows)
        values = {v for row in matrix for v in row}
        assert (exact_complexity(matrix) == 0) == (len(values) == 1)
