"""Tests for the FLP machinery (E6): valency, stalling, the dichotomy."""

import pytest

from repro.asynchronous import (
    AsyncConsensusSystem,
    FirstMessageWins,
    QuorumVote,
    WaitForAll,
    flp_analysis,
    flp_certificate,
)
from repro.impossibility import (
    StallingAdversary,
    ValencyAnalyzer,
    find_herlihy_decider,
)


class TestValency:
    def test_wait_for_all_initial_configs_univalent(self):
        """WaitForAll decides min of all inputs whatever the schedule, so
        every initial configuration is univalent — which already implies
        (Lemma 2, contrapositive) it cannot be 1-resilient."""
        system = AsyncConsensusSystem(WaitForAll(), 2)
        analyzer = ValencyAnalyzer(system)
        for inputs in system.input_vectors:
            valency = analyzer.valency(system.configuration_for(inputs))
            assert valency == frozenset({min(inputs)})

    def test_first_message_wins_mixed_inputs_bivalent(self):
        system = AsyncConsensusSystem(FirstMessageWins(), 2)
        analyzer = ValencyAnalyzer(system)
        assert analyzer.valency(
            system.configuration_for((0, 1))
        ) == frozenset({0, 1})

    def test_unanimous_inputs_univalent(self):
        system = AsyncConsensusSystem(FirstMessageWins(), 2)
        analyzer = ValencyAnalyzer(system)
        for v in (0, 1):
            assert analyzer.valency(
                system.configuration_for((v, v))
            ) == frozenset({v})

    def test_agreement_violation_found_for_unsafe_protocol(self):
        system = AsyncConsensusSystem(FirstMessageWins(), 2)
        analyzer = ValencyAnalyzer(system)
        assert analyzer.find_agreement_violation() is not None

    def test_no_agreement_violation_for_safe_protocol(self):
        system = AsyncConsensusSystem(WaitForAll(), 2)
        analyzer = ValencyAnalyzer(system)
        assert analyzer.find_agreement_violation() is None


class TestStallingAdversary:
    def test_preserves_bivalence_with_fairness(self):
        """The Lemma 3 demonstration: from a bivalent configuration, the
        adversary honours round-robin obligations forever bivalent."""
        system = AsyncConsensusSystem(QuorumVote(), 3)
        analyzer = ValencyAnalyzer(system)
        adversary = StallingAdversary(analyzer)
        start = system.configuration_for((0, 1, 1))
        assert analyzer.is_bivalent(start)
        result = adversary.run(start, stages=18)
        assert result.stayed_bivalent
        assert result.stages == 18
        # The final configuration is still bivalent and nobody decided in a
        # contradictory way along the schedule.
        assert analyzer.is_bivalent(result.final_config)

    def test_requires_bivalent_start(self):
        system = AsyncConsensusSystem(WaitForAll(), 2)
        analyzer = ValencyAnalyzer(system)
        adversary = StallingAdversary(analyzer)
        with pytest.raises(ValueError):
            adversary.run(system.configuration_for((0, 0)), stages=3)

    def test_schedule_is_replayable(self):
        system = AsyncConsensusSystem(QuorumVote(), 3)
        analyzer = ValencyAnalyzer(system)
        adversary = StallingAdversary(analyzer)
        start = system.configuration_for((0, 1, 1))
        result = adversary.run(start, stages=10)
        config = start
        for event in result.schedule:
            config = system.apply(config, event)
        assert config == result.final_config


class TestDichotomy:
    """FLP says every candidate fails exactly one of two ways."""

    def test_first_message_wins_is_unsafe(self):
        report = flp_analysis(FirstMessageWins(), 2)
        assert report.failure_mode == "agreement-violation"

    def test_quorum_vote_is_unsafe(self):
        report = flp_analysis(QuorumVote(), 3)
        assert report.failure_mode == "agreement-violation"

    def test_wait_for_all_blocks(self):
        report = flp_analysis(WaitForAll(), 2)
        assert report.failure_mode == "blocks-under-crash"
        assert report.blocking_crash is not None

    def test_wait_for_all_blocks_n3(self):
        report = flp_analysis(WaitForAll(), 3)
        assert report.failure_mode == "blocks-under-crash"

    def test_certificates(self):
        for protocol, n in [
            (FirstMessageWins(), 2),
            (WaitForAll(), 2),
            (QuorumVote(), 3),
        ]:
            cert = flp_certificate(protocol, n)
            assert cert.technique == "bivalence"
            assert cert.details["failure_mode"] in (
                "agreement-violation",
                "blocks-under-crash",
            )

    def test_crash_exclusion_withholds_input(self):
        """With the START modeling, crashing a process at time zero keeps
        its input out of the system entirely."""
        system = AsyncConsensusSystem(WaitForAll(), 2)
        config, _ = system.run_fair((0, 1), exclude={0})
        states, _buffer = config
        # Process 1 never learns process 0's value.
        assert (0, 0) not in states[1][3]


class _CriticalToy:
    """A hand-built decision system with one critical configuration:
    from 'C', process 0's step forces 0 and process 1's step forces 1."""

    processes = (0, 1)
    values = (0, 1)

    _graph = {
        "C": {("step", 0, None): "A", ("step", 1, None): "B"},
        "A": {("step", 1, None): "A0"},
        "B": {("step", 0, None): "B1"},
        "A0": {},
        "B1": {},
    }
    _decided = {"A0": {0: 0, 1: 0}, "B1": {0: 1, 1: 1}}

    def initial_configurations(self):
        return ["C"]

    def events(self, config):
        return list(self._graph[config])

    def owner(self, event):
        return event[1]

    def apply(self, config, event):
        return self._graph[config][event]

    def decisions(self, config):
        return self._decided.get(config, {})

    def decided_values(self, config):
        return frozenset(self.decisions(config).values())

    def fair_events(self, config):
        owed = {}
        for event in self.events(config):
            owed.setdefault(self.owner(event), event)
        return owed


class TestDeciderSearch:
    def test_herlihy_decider_on_critical_toy(self):
        """The search finds the bivalent configuration all of whose
        successors are univalent — Herlihy's critical configuration."""
        analyzer = ValencyAnalyzer(_CriticalToy())
        found = find_herlihy_decider(analyzer)
        assert found is not None
        config, successor_valencies = found
        assert config == "C"
        assert set(successor_valencies.values()) == {
            frozenset({0}), frozenset({1}),
        }

    def test_no_decider_in_unsafe_protocol(self):
        """An unsafe protocol's configurations stay bivalent even after a
        decision (the other value remains reachable via the violation), so
        no critical configuration exists: the search comes back empty."""
        system = AsyncConsensusSystem(
            FirstMessageWins(), 2, input_vectors=[(0, 1)]
        )
        analyzer = ValencyAnalyzer(system)
        assert find_herlihy_decider(analyzer) is None
