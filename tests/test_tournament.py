"""Tests for the n-process tournament mutex."""

import pytest

from repro.shared_memory.mutex import tournament_system


class TestTournamentTwo:
    def test_mutual_exclusion(self):
        assert tournament_system(2).check_mutual_exclusion() is None

    def test_lockout_freedom(self):
        system = tournament_system(2)
        for p in ("p0", "p1"):
            assert system.check_lockout_freedom(p) is None


class TestTournamentFour:
    """Full state-space verification at n = 4 (~10^5 configurations)."""

    def test_mutual_exclusion(self):
        system = tournament_system(4)
        assert system.check_mutual_exclusion(max_states=2_000_000) is None

    def test_lockout_freedom_of_p0(self):
        system = tournament_system(4)
        assert system.check_lockout_freedom(
            "p0", max_states=2_000_000
        ) is None

    def test_register_count_above_burns_lynch_bound(self):
        system = tournament_system(4)
        assert len(system.initial_memory) == 3 * (4 - 1) >= 4  # >= n


class TestStructure:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            tournament_system(3)

    def test_levels_and_roles(self):
        from repro.shared_memory.mutex import TournamentProcess

        p5 = TournamentProcess("p5", 5, 8)
        assert p5.levels == 3
        # At level 0, process 5 plays node 2 with side 1 (5 = 0b101).
        assert p5._node(0) == 2 and p5._side(0) == 1
        assert p5._node(1) == 1 and p5._side(1) == 0
        assert p5._node(2) == 0 and p5._side(2) == 1
