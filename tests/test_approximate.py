"""Tests for approximate agreement and its convergence rate (E5)."""

import pytest

from repro.consensus import (
    ApproximateAgreement,
    convergence_ratio,
    honest_range,
    reduce_values,
    run_synchronous,
    stretching_adversary,
)


class TestReduce:
    def test_trims_both_ends(self):
        assert reduce_values([5, 1, 9, 3, 7], t=1) == [3, 5, 7]

    def test_trim_two(self):
        assert reduce_values([1, 2, 3, 4, 5, 6, 7], t=2) == [3, 4, 5]

    def test_degenerate_small_list(self):
        assert reduce_values([1, 2], t=1) == [1, 2]

    def test_no_trim(self):
        assert reduce_values([2, 1], t=0) == [1, 2]


class TestConvergence:
    def test_fault_free_one_round_converges_fully(self):
        run = run_synchronous(ApproximateAgreement(1), [0.0, 1.0, 0.5, 0.25], t=0)
        assert honest_range(run) == pytest.approx(0.0)

    def test_range_shrinks_every_round(self):
        ranges = []
        for k in (1, 2, 3, 4):
            final, ratio, _bound = convergence_ratio(n=7, t=1, k=k)
            ranges.append(final)
        assert all(b < a for a, b in zip(ranges, ranges[1:]))

    def test_validity_stays_in_input_range(self):
        run = run_synchronous(ApproximateAgreement(3), [0.0, 1.0, 0.4, 0.9], t=0)
        for value in run.decisions.values():
            assert 0.0 <= value <= 1.0

    def test_exponential_in_k(self):
        """Convergence is geometric: ratio at 2k is about ratio at k squared."""
        _f1, r2, _ = convergence_ratio(n=7, t=1, k=2)
        _f2, r4, _ = convergence_ratio(n=7, t=1, k=4)
        assert r4 <= r2 * r2 * 10  # generous slack; shape, not constants

    def test_larger_t_converges_slower(self):
        _f, ratio_t1, _ = convergence_ratio(n=10, t=1, k=3)
        _f, ratio_t2, _ = convergence_ratio(n=10, t=2, k=3)
        assert ratio_t2 >= ratio_t1

    def test_requires_n_over_3t(self):
        with pytest.raises(ValueError):
            convergence_ratio(n=3, t=1, k=1)

    def test_byzantine_cannot_drag_outside_range(self):
        """With trimming, t Byzantine extremes cannot push honest values
        outside the honest input range."""
        adversary = stretching_adversary([6], low=-100.0, high=100.0)
        run = run_synchronous(
            ApproximateAgreement(2), [0.0, 1.0, 0.2, 0.8, 0.5, 0.3, 0.0],
            adversary=adversary, t=1,
        )
        for pid in run.honest_pids:
            assert 0.0 <= run.decisions[pid] <= 1.0
