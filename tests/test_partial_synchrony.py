"""Tests for partial-synchrony consensus (§2.2.4, DLS [46])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asynchronous import run_dls, safety_sweep
from repro.core import ModelError


class TestSafety:
    def test_sweep_finds_no_violations(self):
        stats = safety_sweep(n=4, t=1, seeds=range(30))
        assert stats["agreement_violations"] == 0

    @pytest.mark.parametrize("seed", range(15))
    def test_safety_without_stabilization(self, seed):
        """Never-GST runs may not decide, but never disagree."""
        result = run_dls(4, 1, [0, 1, 1, 0], gst_phase=None, seed=seed)
        assert result.agreement

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.tuples(*[st.integers(0, 1)] * 5))
    def test_safety_property(self, seed, inputs):
        result = run_dls(5, 2, list(inputs), gst_phase=None, seed=seed)
        assert result.agreement


class TestLiveness:
    @pytest.mark.parametrize("seed", range(10))
    def test_decides_after_gst(self, seed):
        result = run_dls(4, 1, [0, 1, 1, 0], gst_phase=3, seed=seed)
        assert result.all_live_decided
        assert result.agreement

    def test_decides_despite_crashes(self):
        result = run_dls(5, 2, [1, 1, 0, 0, 1], gst_phase=4, seed=2,
                         crashed=[4, 3])
        assert result.all_live_decided
        assert result.agreement

    def test_crashed_coordinator_is_rotated_past(self):
        """Crashing process 0 (the first coordinator) only delays things."""
        result = run_dls(5, 2, [1, 0, 1, 0, 1], gst_phase=2, seed=9,
                         crashed=[0])
        assert result.all_live_decided

    def test_decision_is_prompt_after_gst(self):
        result = run_dls(4, 1, [1, 1, 0, 0], gst_phase=3, seed=1)
        # Within a coordinator rotation of GST.
        assert result.phases_run <= 3 + 4


class TestValidity:
    @pytest.mark.parametrize("v", [0, 1])
    def test_unanimous_inputs_decide_that_value(self, v):
        result = run_dls(4, 1, [v] * 4, gst_phase=2, seed=3)
        decided = {d for d in result.decisions.values() if d is not None}
        assert decided == {v}


class TestContract:
    def test_requires_majority_correct(self):
        with pytest.raises(ModelError):
            run_dls(4, 2, [0, 1, 0, 1])

    def test_rejects_too_many_crashes(self):
        with pytest.raises(ModelError):
            run_dls(4, 1, [0, 1, 0, 1], crashed=[0, 1])
