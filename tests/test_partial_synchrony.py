"""Partial-synchrony consensus (§2.2.4, DLS [46]).

The legacy ``run_dls`` surface is now an adapter over the GST engine
(:mod:`repro.circumvention.gst`), so the first half keeps the seed-era
assertions verbatim; the second half drives the engine directly through
``("gst", g)`` / ``("delay", r, link, d)`` adversary atoms — hypothesis
safety on every seed, byte-identical replay, and the provable pre-GST
stall exiting via a structured :class:`~repro.core.budget.BudgetExceeded`
receipt.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asynchronous import run_dls, safety_sweep
from repro.circumvention import blackout_atoms, run_gst_consensus
from repro.core import ModelError
from repro.core.budget import Budget, BudgetExceeded
from repro.core.runtime import replay


class TestSafety:
    def test_sweep_finds_no_violations(self):
        stats = safety_sweep(n=4, t=1, seeds=range(30))
        assert stats["agreement_violations"] == 0

    @pytest.mark.parametrize("seed", range(15))
    def test_safety_without_stabilization(self, seed):
        """Never-GST runs may not decide, but never disagree."""
        result = run_dls(4, 1, [0, 1, 1, 0], gst_phase=None, seed=seed)
        assert result.agreement

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.tuples(*[st.integers(0, 1)] * 5))
    def test_safety_property(self, seed, inputs):
        result = run_dls(5, 2, list(inputs), gst_phase=None, seed=seed)
        assert result.agreement


class TestLiveness:
    @pytest.mark.parametrize("seed", range(10))
    def test_decides_after_gst(self, seed):
        result = run_dls(4, 1, [0, 1, 1, 0], gst_phase=3, seed=seed)
        assert result.all_live_decided
        assert result.agreement

    def test_decides_despite_crashes(self):
        result = run_dls(5, 2, [1, 1, 0, 0, 1], gst_phase=4, seed=2,
                         crashed=[4, 3])
        assert result.all_live_decided
        assert result.agreement

    def test_crashed_coordinator_is_rotated_past(self):
        """Crashing process 0 (the first coordinator) only delays things."""
        result = run_dls(5, 2, [1, 0, 1, 0, 1], gst_phase=2, seed=9,
                         crashed=[0])
        assert result.all_live_decided

    def test_decision_is_prompt_after_gst(self):
        result = run_dls(4, 1, [1, 1, 0, 0], gst_phase=3, seed=1)
        # Within a coordinator rotation of GST.
        assert result.phases_run <= 3 + 4


class TestValidity:
    @pytest.mark.parametrize("v", [0, 1])
    def test_unanimous_inputs_decide_that_value(self, v):
        result = run_dls(4, 1, [v] * 4, gst_phase=2, seed=3)
        decided = {d for d in result.decisions.values() if d is not None}
        assert decided == {v}


class TestContract:
    def test_requires_majority_correct(self):
        with pytest.raises(ModelError):
            run_dls(4, 2, [0, 1, 0, 1])

    def test_rejects_too_many_crashes(self):
        with pytest.raises(ModelError):
            run_dls(4, 1, [0, 1, 0, 1], crashed=[0, 1])


# ---------------------------------------------------------------------------
# GST engine: adversary atoms as first-class schedule elements
# ---------------------------------------------------------------------------

#: partial-synchrony schedules: a GST point plus per-round link delays
_delay_atoms = st.lists(
    st.tuples(
        st.just("delay"),
        st.integers(0, 12),
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
        st.integers(1, 3),
    ),
    max_size=10,
)


class TestAtomSafety:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(1, 12),
        _delay_atoms,
        st.tuples(*[st.integers(0, 1)] * 4),
    )
    def test_agreement_on_every_seed_and_schedule(
        self, seed, gst, delays, inputs
    ):
        atoms = (("gst", gst),) + tuple(delays)
        run = run_gst_consensus(atoms, seed, inputs=inputs, t=1)
        decided = {
            v
            for p, v in run.decisions.items()
            if v is not None and p not in run.crashed
        }
        assert len(decided) <= 1
        assert decided <= set(inputs)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 1))
    def test_unanimous_validity(self, seed, v):
        run = run_gst_consensus(
            (("gst", 2),), seed, inputs=(v,) * 4, t=1
        )
        assert {d for d in run.decisions.values() if d is not None} == {v}


class TestAtomLiveness:
    def test_blackout_decides_first_post_gst_rotation(self):
        """Total silence until GST, then a full rotation suffices."""
        gst = 6
        run = run_gst_consensus(blackout_atoms(gst, 4), 0, t=1)
        assert all(v is not None for v in run.decisions.values())
        assert gst <= run.rounds <= gst + 4

    def test_replay_is_byte_identical(self):
        run = run_gst_consensus(
            blackout_atoms(5, 4) + (("down", 0, 3),), 11, t=1
        )
        assert replay(run.trace).fingerprint() == run.trace.fingerprint()


class TestProvableStall:
    def test_pre_gst_stall_exits_via_structured_receipt(self):
        """Before GST nothing can decide: the budget receipt proves it."""
        gst, n = 8, 4
        budget_steps = n * gst - n  # exhausted strictly before GST
        with pytest.raises(BudgetExceeded) as exc_info:
            run_gst_consensus(
                blackout_atoms(gst, n),
                0,
                t=1,
                meter=Budget(max_steps=budget_steps).meter("gst-stall"),
            )
        receipt = exc_info.value
        assert receipt.resource == "steps"
        assert receipt.spent > receipt.limit

    def test_own_budget_returns_resumable_partial(self):
        gst, n = 8, 4
        partial = run_gst_consensus(
            blackout_atoms(gst, n), 0, t=1,
            budget=Budget(max_steps=n * 2),
        )
        assert not partial.complete
        assert partial.interrupted is not None
        assert all(v is None for v in partial.decisions.values())
        resumed = run_gst_consensus((), resume=partial)
        assert resumed.complete
        assert all(v is not None for v in resumed.decisions.values())
        # The finished trace matches an uninterrupted run byte-for-byte.
        whole = run_gst_consensus(blackout_atoms(gst, n), 0, t=1)
        assert resumed.trace.fingerprint() == whole.trace.fingerprint()


class TestAtomContract:
    def test_rejects_overpowered_fault_bound(self):
        with pytest.raises(ModelError):
            run_gst_consensus((("gst", 2),), 0, inputs=(0, 1, 0, 1), t=2)
