"""Canonical runs whose trace fingerprints are pinned as golden fixtures.

Each entry produces one deterministic :class:`~repro.core.runtime.Trace`
from fixed coordinates — protocol, inputs, adversary schedule, seed —
covering every substrate the unified runtime serves: asynchronous and
scripted rings (LCR), synchronous rounds (FloodSet under crashes, EIG
under Byzantine lies), the datalink channel (ABP), shared memory
(Peterson, the racy lock), the asynchronous network (eager majority,
fair-seeded and scripted) and a full chaos campaign's shrunk
counterexample.

``tests/fixtures/golden_traces.json`` pins each run's fingerprint plus
enough metadata for a readable drift report.  Any change to a
simulator, the event schema, seed derivation or the canonical encoding
shows up as a fingerprint drift and must be either fixed or explicitly
re-pinned::

    PYTHONPATH=src python -m tests.golden_runs --regen

The golden suite is also the parallel fabric's anchor: campaigns and
explorations at ``workers=N`` must reproduce these exact fingerprints.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Callable, Dict

from repro.chaos.campaign import run_campaign
from repro.chaos.targets import (
    AlternatingBitTarget,
    EIGByzantineTarget,
    EagerMajorityTarget,
    EagerMajorityProtocol,
    FloodSetCrashTarget,
    LCRRingTarget,
    RacyLockTarget,
)
from repro.circumvention.detectors import run_heartbeat_detector
from repro.circumvention.gst import blackout_atoms, run_gst_consensus
from repro.circumvention.leases import run_quorum_lease
from repro.circumvention.randomized import run_ben_or_traced
from repro.consensus.floodset import FloodSet
from repro.consensus.synchronous import CrashAdversary, run_synchronous
from repro.core.artifacts import atomic_write_text
from repro.core.runtime import Trace
from repro.asynchronous.network import AsyncConsensusSystem
from repro.rings.lcr import LCRProcess
from repro.rings.simulator import run_async_ring
from repro.shared_memory.mutex.peterson import peterson_system
from repro.shared_memory.system import run_system

FIXTURE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "golden_traces.json"
)

FIXTURE_SCHEMA = "repro-golden-traces/v1"


def _lcr_async_seeded() -> Trace:
    return run_async_ring(
        seed=11,
        process_factory=lambda: [LCRProcess(i) for i in (3, 1, 4, 2, 5)],
    ).trace


def _scripted(target, seed: int) -> Trace:
    """Run a chaos target on the schedule its own generator draws at ``seed``.

    ``generate`` is a pure function of the RNG, so (target, seed) are
    complete reproduction coordinates — the same contract campaign cases
    rely on.
    """
    import random

    return target.run(tuple(target.generate(random.Random(seed))), seed=seed)


def _lcr_ring_scripted() -> Trace:
    # The chaos control target under one fixed scheduling script.
    return _scripted(LCRRingTarget(), seed=7)


def _floodset_crash_chain() -> Trace:
    # One crash per round, partial final rounds — the t+1 chain shape.
    return run_synchronous(
        FloodSet(),
        (0, 1, 1, 0, 1),
        CrashAdversary({0: (1, (1,)), 2: (2, (3,))}),
        t=2,
    ).trace


def _floodset_truncated() -> Trace:
    return _scripted(FloodSetCrashTarget(), seed=3)


def _eig_byzantine_lies() -> Trace:
    return _scripted(EIGByzantineTarget(), seed=1)


def _abp_channel_program() -> Trace:
    return _scripted(AlternatingBitTarget(), seed=2)


def _peterson_round_robin() -> Trace:
    # Both processes try, then the fair round-robin scheduler drives the
    # doorway/spin protocol to completion.
    system = peterson_system()
    state = next(iter(system.initial_states()))
    for name in ("p0", "p1"):
        state = next(iter(system.apply(state, ("try", name))))
    return run_system(system, max_steps=40, start=state).trace


def _racy_lock_interleaving() -> Trace:
    return RacyLockTarget().run((0, 1, 0, 1, 0, 1, 0, 1), seed=0)


def _eager_majority_scripted() -> Trace:
    return _scripted(EagerMajorityTarget(), seed=4)


def _eager_majority_fair_seeded() -> Trace:
    system = AsyncConsensusSystem(EagerMajorityProtocol(3), 3)
    return system.run_fair_traced((0, 1, 1), max_steps=60, seed=5).trace


def _detector_heartbeat_run() -> Trace:
    # A sustained split isolating {2,3}, with 3 crashing mid-split:
    # false suspicion across the cut, healing (trust + adaptive timeout
    # doubling) once it lifts, and permanent completeness for the
    # crashed node — all stabilizing well before the horizon.
    atoms = tuple(("split", t, 0b1100) for t in range(3, 9)) + (
        ("down", 6, 3),
    )
    return run_heartbeat_detector(atoms, 0).trace


def _lease_partition_run() -> Trace:
    # A sustained minority split mid-lease: the holder keeps its quorum,
    # the cut-off side sees bounded-staleness reads, then heals.
    atoms = tuple(("split", t, 0b1100) for t in range(6, 12))
    return run_quorum_lease(atoms, 0).trace


def _benor_scripted_crash() -> Trace:
    # Ben-Or under a fixed delivery script with one mid-run crash: the
    # coin-flip circumvention pinned end to end — script exhaustion
    # hands scheduling to the seeded RNG, so this covers both regimes.
    atoms = (3, 1, 4, 1, 5, 9, 2, 6, ("crash", 5, 2))
    return run_ben_or_traced(atoms, 0, t=1, inputs=(0, 1, 0, 1)).trace


def _gst_blackout_run() -> Trace:
    # Total silence until GST round 5, then DLS decides within one
    # coordinator rotation — the partial-synchrony receipt's happy side.
    return run_gst_consensus(blackout_atoms(5, 4), 0, t=1).trace


def _chaos_counterexample() -> Trace:
    # The full pipeline — fuzz, classify, shrink, replay-verify — pinned
    # end to end: the first shrunk FloodSet counterexample of a fixed
    # campaign.
    report = run_campaign(
        targets=[FloodSetCrashTarget()], runs=10, master_seed=0
    )
    if not report.counterexamples:
        raise AssertionError(
            "canonical chaos campaign found no counterexample; "
            "the planted FloodSet bug or the fuzzer drifted"
        )
    return report.counterexamples[0].trace


CANONICAL_RUNS: Dict[str, Callable[[], Trace]] = {
    "lcr-async-ring-seeded": _lcr_async_seeded,
    "lcr-ring-scripted": _lcr_ring_scripted,
    "floodset-crash-chain": _floodset_crash_chain,
    "floodset-truncated-chaos": _floodset_truncated,
    "eig-byzantine-lies": _eig_byzantine_lies,
    "abp-channel-program": _abp_channel_program,
    "peterson-round-robin": _peterson_round_robin,
    "racy-lock-interleaving": _racy_lock_interleaving,
    "eager-majority-scripted": _eager_majority_scripted,
    "eager-majority-fair-seeded": _eager_majority_fair_seeded,
    "chaos-floodset-counterexample": _chaos_counterexample,
    "detector-heartbeat-run": _detector_heartbeat_run,
    "lease-partition-run": _lease_partition_run,
    "benor-scripted-crash": _benor_scripted_crash,
    "gst-blackout-run": _gst_blackout_run,
}


def describe(trace: Trace) -> Dict:
    """The fixture record for one trace: fingerprint + drift context."""
    return {
        "fingerprint": trace.fingerprint(),
        "substrate": trace.substrate,
        "protocol": trace.protocol,
        "seed": trace.seed,
        "events": trace.steps,
        "first_event": repr(trace.events[0]) if trace.events else None,
        "last_event": repr(trace.events[-1]) if trace.events else None,
        "outcome": repr(trace.outcome),
    }


def current_records() -> Dict[str, Dict]:
    return {name: describe(fn()) for name, fn in sorted(CANONICAL_RUNS.items())}


def load_fixture(path: str = FIXTURE_PATH) -> Dict[str, Dict]:
    with open(path, encoding="utf-8") as handle:
        fixture = json.load(handle)
    if fixture.get("schema") != FIXTURE_SCHEMA:
        raise ValueError(
            f"unknown golden-trace fixture schema {fixture.get('schema')!r}"
        )
    return fixture["traces"]


def write_fixture(path: str = FIXTURE_PATH) -> Dict[str, Dict]:
    records = current_records()
    payload = {"schema": FIXTURE_SCHEMA, "traces": records}
    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--regen",
        action="store_true",
        help=f"recompute every canonical run and rewrite {FIXTURE_PATH}",
    )
    args = parser.parse_args(argv)
    if not args.regen:
        parser.error("nothing to do; pass --regen to rewrite the fixture")
    records = write_fixture()
    for name, record in sorted(records.items()):
        print(f"{name}: {record['fingerprint'][:16]} ({record['events']} events)")
    print(f"wrote {FIXTURE_PATH} ({len(records)} canonical runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
