"""Model-checking tests for the mutual exclusion algorithm zoo (§2.1).

Each algorithm is checked over its full reachable state space (environment
inputs included) for the three classic properties.  The outcomes mirror the
literature exactly:

=====================  =====  =========  ========
algorithm              mutex  deadlock-  lockout-
                              free       free
=====================  =====  =========  ========
TAS semaphore (2 val)   yes    yes        NO
handoff lock (4 val)    yes    yes        yes
Peterson (r/w)          yes    yes        yes
Dijkstra (r/w)          yes    yes        NO
bakery (r/w, FIFO)      yes    (simulated: unbounded state)
=====================  =====  =========  ========
"""

import pytest

from repro.shared_memory.mutex import (
    CRITICAL,
    TRYING,
    bakery_system,
    dijkstra_system,
    handoff_lock_system,
    peterson_system,
    tas_semaphore_system,
)


class TestTasSemaphore:
    def test_mutual_exclusion(self):
        assert tas_semaphore_system(2).check_mutual_exclusion() is None

    def test_mutual_exclusion_three_processes(self):
        assert tas_semaphore_system(3).check_mutual_exclusion() is None

    def test_deadlock_freedom(self):
        system = tas_semaphore_system(2)
        for p in ("p0", "p1"):
            assert system.check_deadlock_freedom(p) is None

    def test_admits_lockout(self):
        """The paper's point: 2 values cannot give fairness."""
        system = tas_semaphore_system(2)
        witness = system.check_lockout_freedom("p0")
        assert witness is not None
        assert witness.victim == "p0"
        # The victim is in its trying region at every state of the cycle.
        for state in witness.cycle_states:
            assert system.local_state(state, "p0")["region"] == TRYING
        # The cycle is fair to the winner: it keeps entering and exiting.
        assert ("crit", "p1") in witness.cycle_actions
        assert ("exit", "p1") in witness.cycle_actions


class TestHandoffLock:
    def test_mutual_exclusion(self):
        assert handoff_lock_system().check_mutual_exclusion() is None

    def test_deadlock_freedom(self):
        system = handoff_lock_system()
        for p in ("p0", "p1"):
            assert system.check_deadlock_freedom(p) is None

    def test_lockout_freedom(self):
        """Four values buy the fairness two values cannot express."""
        system = handoff_lock_system()
        for p in ("p0", "p1"):
            assert system.check_lockout_freedom(p) is None

    def test_rejects_bad_index(self):
        from repro.shared_memory.mutex import HandoffLockProcess

        with pytest.raises(ValueError):
            HandoffLockProcess("p2", 2)


class TestPeterson:
    def test_mutual_exclusion(self):
        assert peterson_system().check_mutual_exclusion() is None

    def test_deadlock_freedom(self):
        system = peterson_system()
        for p in ("p0", "p1"):
            assert system.check_deadlock_freedom(p) is None

    def test_lockout_freedom(self):
        system = peterson_system()
        for p in ("p0", "p1"):
            assert system.check_lockout_freedom(p) is None


class TestDijkstra:
    def test_mutual_exclusion_two(self):
        assert dijkstra_system(2).check_mutual_exclusion() is None

    def test_mutual_exclusion_three(self):
        assert dijkstra_system(3).check_mutual_exclusion(max_states=400_000) is None

    def test_deadlock_freedom(self):
        system = dijkstra_system(2)
        for p in ("p0", "p1"):
            assert system.check_deadlock_freedom(p) is None

    def test_admits_lockout(self):
        """Dijkstra's 1965 algorithm is famously unfair."""
        witness = dijkstra_system(2).check_lockout_freedom("p0")
        assert witness is not None


class TestBakerySimulation:
    """Bakery has unbounded tickets, so we verify by long scheduled runs."""

    def _drive(self, system, scheduler, steps):
        """Run with a scheduler while an environment keeps all processes
        requesting and releasing; check mutual exclusion throughout."""
        state = next(iter(system.initial_states()))
        max_critical = 0
        entries = {p.name: 0 for p in system.processes}
        for step in range(steps):
            # Environment: request for anyone idle, release anyone critical.
            for p in system.processes:
                local = system.local_state(state, p.name)
                if local["region"] == "rem" and local["announce"] is None:
                    state = next(iter(system.apply(state, ("try", p.name))))
                elif local["region"] == CRITICAL and local["announce"] is None:
                    state = next(iter(system.apply(state, ("exit", p.name))))
            enabled = sorted(system.enabled_actions(state), key=repr)
            if not enabled:
                break
            action = scheduler.choose_from(enabled, step)
            state = next(iter(system.apply(state, action)))
            crit = system.critical_processes(state)
            max_critical = max(max_critical, len(crit))
            if isinstance(action, tuple) and action[0] == "crit":
                entries[action[1]] += 1
        return max_critical, entries

    class _SeededPicker:
        def __init__(self, seed):
            import random

            self.rng = random.Random(seed)

        def choose_from(self, enabled, step):
            return enabled[self.rng.randrange(len(enabled))]

    class _RoundRobinPicker:
        def choose_from(self, enabled, step):
            return enabled[step % len(enabled)]

    @pytest.mark.parametrize("n", [2, 3])
    def test_mutual_exclusion_under_random_schedules(self, n):
        for seed in range(5):
            system = bakery_system(n)
            max_crit, entries = self._drive(
                system, self._SeededPicker(seed), steps=3_000
            )
            assert max_crit <= 1

    @pytest.mark.parametrize("n", [2, 3])
    def test_every_process_makes_progress(self, n):
        system = bakery_system(n)
        _max_crit, entries = self._drive(
            system, self._RoundRobinPicker(), steps=5_000
        )
        assert all(count > 0 for count in entries.values()), entries


class TestBoundedWaiting:
    """The quantitative fairness ladder (measured past each doorway)."""

    def test_handoff_lock_never_bypassed(self):
        system = handoff_lock_system()
        assert system.measure_bypass("p0", steps=6000, seeds=range(4)) == 0

    def test_peterson_bypass_bound_is_one(self):
        """The textbook bound: after the doorway, the other process enters
        at most once before we do."""
        system = peterson_system()
        assert system.measure_bypass("p0", steps=6000, seeds=range(4)) <= 1

    def test_bakery_bypass_bounded_by_n_minus_one(self):
        system = bakery_system(3)
        assert system.measure_bypass("p0", steps=6000, seeds=range(4)) <= 2

    def test_unfair_algorithms_admit_large_bypass(self):
        semaphore = tas_semaphore_system(2)
        assert semaphore.measure_bypass("p0", steps=6000, seeds=range(4)) > 3
        dijkstra = dijkstra_system(2)
        assert dijkstra.measure_bypass("p0", steps=6000, seeds=range(4)) > 3
