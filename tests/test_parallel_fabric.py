"""The parallel fabric's headline guarantee: workers never change answers.

Every consumer of :mod:`repro.parallel` — sharded chaos campaigns,
parallel frontier expansion, the sharded register search — must produce
results *bit-identical* to its serial twin, including under budget
overdrafts and across resume boundaries.  Hypothesis drives the
equivalence over seeds, shard widths and roster subsets; fixed-seed
tests pin the budget fan-in and cross-mode resume paths; a subprocess
test proves the whole pipeline is independent of ``PYTHONHASHSEED``.
"""

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.campaign import run_campaign
from repro.chaos.targets import (
    AlternatingBitTarget,
    FloodSetCrashTarget,
    LCRRingTarget,
    default_targets,
)
from repro.core.budget import Budget
from repro.core.exploration import explore
from repro.parallel import (
    SharedCounter,
    WorkerPool,
    resolve_workers,
    split_chunks,
)
from repro.registers.exhaustive import search_register_consensus
from repro.shared_memory.mutex.peterson import peterson_system


def _campaign_summary(report):
    return (
        report.results,
        [cx.fingerprint for cx in report.counterexamples],
        [cx.trace.fingerprint() for cx in report.counterexamples],
        report.complete,
        report.resume_at,
    )


def _explore_summary(result):
    return (result.reachable, result.parents, result.complete)


# ---------------------------------------------------------------------------
# Primitives


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers("auto") >= 1
    with pytest.raises(ValueError):
        resolve_workers(-2)


@given(st.lists(st.integers(), max_size=40), st.integers(1, 8))
def test_split_chunks_partitions_in_order(items, chunks):
    parts = split_chunks(items, chunks)
    assert [x for part in parts for x in part] == items
    assert all(part for part in parts)
    assert len(parts) <= chunks


def test_shared_counter_aggregates():
    counter = SharedCounter()
    counter.add(steps=3, states=5)
    counter.add(steps=2)
    assert counter.snapshot() == {"steps": 5, "states": 5}
    assert not counter.exceeded(max_steps=6, max_states=6)
    assert counter.exceeded(max_steps=5)  # at the limit == spent
    assert counter.exceeded(max_states=3)
    assert not counter.exceeded()


def test_worker_pool_serial_fallback_runs_in_process():
    seen = []
    with WorkerPool(1, initializer=seen.append, initargs=("init",)) as pool:
        assert pool.map(len, [(1, 2), (3,), ()]) == [2, 1, 0]
    assert seen == ["init"]  # workers=1 never leaves the parent process


# ---------------------------------------------------------------------------
# Sharded campaigns == serial campaigns


@settings(max_examples=6, deadline=None)
@given(
    master_seed=st.integers(0, 2**16),
    runs=st.integers(1, 5),
    workers=st.integers(2, 4),
    roster=st.sampled_from(
        [
            (FloodSetCrashTarget,),
            (AlternatingBitTarget, LCRRingTarget),
            (FloodSetCrashTarget, AlternatingBitTarget),
        ]
    ),
)
def test_campaign_equivalence(master_seed, runs, workers, roster):
    targets = [cls() for cls in roster]
    serial = run_campaign(
        targets=targets, runs=runs, master_seed=master_seed, shrink_checks=8
    )
    sharded = run_campaign(
        targets=[cls() for cls in roster],
        runs=runs,
        master_seed=master_seed,
        shrink_checks=8,
        workers=workers,
    )
    assert _campaign_summary(sharded) == _campaign_summary(serial)


def test_campaign_budget_fanin_and_resume_match_serial():
    """Overdraft mid-campaign, then resume — both legs identical."""
    roster = lambda: default_targets()[:3]  # noqa: E731
    budget = Budget(max_steps=7)
    serial = run_campaign(targets=roster(), runs=4, master_seed=1, budget=budget)
    sharded = run_campaign(
        targets=roster(), runs=4, master_seed=1, budget=budget, workers=3
    )
    assert not serial.complete and serial.resume_at
    assert _campaign_summary(sharded) == _campaign_summary(serial)

    serial_rest = run_campaign(
        targets=roster(), runs=4, master_seed=1, resume=serial
    )
    sharded_rest = run_campaign(
        targets=roster(), runs=4, master_seed=1, resume=sharded, workers=2
    )
    assert serial_rest.complete
    assert _campaign_summary(sharded_rest) == _campaign_summary(serial_rest)


# ---------------------------------------------------------------------------
# Parallel exploration == serial exploration


@settings(max_examples=5, deadline=None)
@given(workers=st.integers(2, 4), include_inputs=st.booleans())
def test_explore_equivalence(workers, include_inputs):
    # Fresh automata per leg: the state-graph memo lives on the instance.
    serial = explore(peterson_system(), include_inputs=include_inputs)
    parallel = explore(
        peterson_system(), include_inputs=include_inputs, workers=workers
    )
    assert _explore_summary(parallel) == _explore_summary(serial)


def test_explore_budget_overdraft_and_cross_mode_resume():
    """A budgeted parallel run stops on the same state set as serial, and
    resuming it *serially* (or vice versa) completes to the same graph."""
    budget = Budget(max_states=41)  # exploration charges per state found
    serial_sys, parallel_sys = peterson_system(), peterson_system()
    serial = explore(serial_sys, include_inputs=True, budget=budget)
    parallel = explore(
        parallel_sys, include_inputs=True, budget=budget, workers=3
    )
    assert not serial.complete
    assert _explore_summary(parallel) == _explore_summary(serial)

    # Cross-mode resume: parallel partial -> serial finish, and serial
    # partial -> parallel finish, both land on the full serial graph.
    full = explore(peterson_system(), include_inputs=True)
    finish_serial = explore(parallel_sys, include_inputs=True)
    finish_parallel = explore(serial_sys, include_inputs=True, workers=2)
    assert _explore_summary(finish_serial) == _explore_summary(full)
    assert _explore_summary(finish_parallel) == _explore_summary(full)


# ---------------------------------------------------------------------------
# Sharded register search == serial register search


def test_register_search_equivalence_full_and_budgeted():
    serial = search_register_consensus(depth=1)
    assert search_register_consensus(depth=1, workers=3) == serial

    budget = Budget(max_steps=20)
    part_serial = search_register_consensus(depth=1, budget=budget)
    part_sharded = search_register_consensus(depth=1, budget=budget, workers=4)
    assert not part_serial.complete and part_serial.resume_at == 20
    assert part_sharded == part_serial

    rest_serial = search_register_consensus(depth=1, resume=part_serial)
    rest_sharded = search_register_consensus(
        depth=1, resume=part_sharded, workers=2
    )
    assert rest_serial == serial
    assert rest_sharded == serial


# ---------------------------------------------------------------------------
# PYTHONHASHSEED hardening

_HASHSEED_PROBE = """\
import json
from repro.chaos.campaign import run_campaign
from repro.chaos.targets import FloodSetCrashTarget, LCRRingTarget

report = run_campaign(
    targets=[FloodSetCrashTarget(), LCRRingTarget()],
    runs=6, master_seed=0, shrink_checks=16, workers=2,
)
print(json.dumps({
    "verdicts": [r.verdict for r in report.results],
    "seeds": [r.seed for r in report.results],
    "counterexamples": [cx.trace.fingerprint() for cx in report.counterexamples],
}, sort_keys=True))
"""


def test_campaign_independent_of_pythonhashseed(tmp_path):
    """The same sharded campaign under three hash seeds, three processes.

    ``derive_seed`` is sha256-based and every ordering the fabric relies
    on is explicit, so set-iteration scrambling from a different
    ``PYTHONHASHSEED`` must not leak into verdicts, seeds or artifacts.
    """
    import os

    outputs = set()
    for hashseed in ("0", "1", "31337"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_PROBE],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        outputs.add(proc.stdout)
    assert len(outputs) == 1, "campaign output varies with PYTHONHASHSEED"
