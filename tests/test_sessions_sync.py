"""Tests for the sessions time gap (E9) and synchronizer tradeoff."""

import networkx as nx
import pytest

from repro.asynchronous import (
    ring_diameter,
    run_alpha_synchronizer,
    run_async_sessions,
    run_beta_synchronizer,
    run_sync_sessions,
    stretching_lower_bound,
    tradeoff_comparison,
)


class TestSessions:
    @pytest.mark.parametrize("n,s", [(4, 2), (8, 3), (8, 4), (16, 3)])
    def test_async_algorithm_is_correct(self, n, s):
        outcome = run_async_sessions(n, s)
        assert outcome.sessions_completed() == s

    @pytest.mark.parametrize("n,s", [(4, 2), (8, 4), (16, 3), (32, 4)])
    def test_async_time_respects_lower_bound(self, n, s):
        outcome = run_async_sessions(n, s)
        assert outcome.total_time >= stretching_lower_bound(n, s)

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_gap_grows_with_diameter(self, n):
        s = 3
        sync = run_sync_sessions(n, s)
        async_ = run_async_sessions(n, s)
        assert sync.total_time == s
        assert async_.total_time >= s * ring_diameter(n) / 2

    def test_async_time_linear_in_sessions(self):
        t2 = run_async_sessions(16, 2).total_time
        t4 = run_async_sessions(16, 4).total_time
        assert t4 >= 1.8 * t2

    def test_sync_needs_no_messages(self):
        assert run_sync_sessions(8, 3).messages == 0


class TestSynchronizers:
    def graph(self):
        # Dense enough that |E| >> n, making the alpha/beta contrast stark.
        return nx.random_regular_graph(6, 20, seed=7)

    def test_alpha_is_fast(self):
        outcome = run_alpha_synchronizer(self.graph(), pulses=5)
        assert outcome.time_per_pulse <= 4

    def test_beta_is_lean(self):
        g = self.graph()
        alpha = run_alpha_synchronizer(g, pulses=5)
        beta = run_beta_synchronizer(g, pulses=5)
        # Beta spends fewer overhead messages, alpha less time per pulse.
        assert beta.overhead_per_pulse < alpha.overhead_per_pulse
        assert alpha.time_per_pulse < beta.time_per_pulse

    def test_all_pulses_simulated(self):
        g = self.graph()
        for outcome in tradeoff_comparison(g, pulses=4).values():
            # Every node broadcasts each pulse: payload = 2|E| per pulse.
            assert outcome.payload_messages == 4 * 2 * g.number_of_edges()

    def test_line_graph_beta_depth_cost(self):
        line = nx.path_graph(16)
        beta = run_beta_synchronizer(line, pulses=3)
        # Convergecast + broadcast over depth ~15: time per pulse is large.
        assert beta.time_per_pulse > 15
