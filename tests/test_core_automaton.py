"""Tests for the I/O automaton model: signatures, tables, input enabling."""

import pytest

from repro.core import (
    FunctionAutomaton,
    ModelError,
    Signature,
    TableAutomaton,
)


def channel_automaton():
    """A one-slot channel: input 'send', output 'recv'."""
    sig = Signature(inputs=frozenset({"send"}), outputs=frozenset({"recv"}))
    return TableAutomaton(
        signature=sig,
        initial=["empty"],
        transitions={
            ("empty", "send"): ["full"],
            ("full", "send"): ["full"],  # overwrite
            ("full", "recv"): ["empty"],
        },
        name="one-slot-channel",
    )


class TestSignature:
    def test_disjointness_enforced(self):
        with pytest.raises(ModelError):
            Signature(inputs=frozenset({"a"}), outputs=frozenset({"a"}))

    def test_external_and_locally_controlled(self):
        sig = Signature(
            inputs=frozenset({"i"}),
            outputs=frozenset({"o"}),
            internals=frozenset({"t"}),
        )
        assert sig.external == {"i", "o"}
        assert sig.locally_controlled == {"o", "t"}
        assert sig.all_actions == {"i", "o", "t"}

    def test_classify(self):
        sig = Signature(inputs=frozenset({"i"}), outputs=frozenset({"o"}))
        assert sig.classify("i") == "input"
        assert sig.classify("o") == "output"
        with pytest.raises(ModelError):
            sig.classify("unknown")

    def test_hide_moves_outputs_to_internal(self):
        sig = Signature(outputs=frozenset({"o1", "o2"}))
        hidden = sig.hide({"o1"})
        assert hidden.outputs == {"o2"}
        assert hidden.internals == {"o1"}

    def test_hide_rejects_non_outputs(self):
        sig = Signature(inputs=frozenset({"i"}))
        with pytest.raises(ModelError):
            sig.hide({"i"})


class TestTableAutomaton:
    def test_requires_start_state(self):
        with pytest.raises(ModelError):
            TableAutomaton(Signature(), initial=[], transitions={})

    def test_enabled_actions(self):
        auto = channel_automaton()
        assert list(auto.enabled_actions("empty")) == []
        assert list(auto.enabled_actions("full")) == ["recv"]

    def test_apply_output(self):
        auto = channel_automaton()
        assert list(auto.apply("full", "recv")) == ["empty"]

    def test_input_always_enabled_default_selfloop(self):
        sig = Signature(inputs=frozenset({"ping"}))
        auto = TableAutomaton(sig, initial=["s"], transitions={})
        assert list(auto.apply("s", "ping")) == ["s"]

    def test_unknown_action_rejected(self):
        auto = channel_automaton()
        with pytest.raises(ModelError):
            list(auto.apply("empty", "bogus"))

    def test_step_requires_determinism(self):
        sig = Signature(outputs=frozenset({"o"}))
        auto = TableAutomaton(
            sig, initial=["s"], transitions={("s", "o"): ["a", "b"]}
        )
        with pytest.raises(ModelError):
            auto.step("s", "o")

    def test_is_quiescent(self):
        auto = channel_automaton()
        assert auto.is_quiescent("empty")
        assert not auto.is_quiescent("full")

    def test_validate_input_enabling(self):
        auto = channel_automaton()
        auto.validate_input_enabling(["empty", "full"])

    def test_tasks_default_is_all_locally_controlled(self):
        auto = channel_automaton()
        assert auto.tasks() == [frozenset({"recv"})]

    def test_tasks_must_be_locally_controlled(self):
        sig = Signature(inputs=frozenset({"i"}), outputs=frozenset({"o"}))
        with pytest.raises(ModelError):
            TableAutomaton(
                sig, initial=["s"], transitions={}, tasks=[{"i"}]
            )

    def test_rename_is_fluent(self):
        auto = channel_automaton().rename("chan")
        assert auto.name == "chan"


class TestFunctionAutomaton:
    def build_counter(self, limit=3):
        sig = Signature(outputs=frozenset({"inc"}))
        return FunctionAutomaton(
            signature=sig,
            initial=[0],
            enabled=lambda s: ["inc"] if s < limit else [],
            transition=lambda s, a: [s + 1] if a == "inc" and s < limit else [],
            name="counter",
        )

    def test_counts_to_limit(self):
        auto = self.build_counter()
        state = 0
        while not auto.is_quiescent(state):
            state = auto.step(state, "inc")
        assert state == 3

    def test_signature_checked_on_apply(self):
        auto = self.build_counter()
        with pytest.raises(ModelError):
            list(auto.apply(0, "dec"))
