"""Tests for the Moran–Wolfstahl task-solvability characterization (E18)."""

import networkx as nx
import pytest

from repro.asynchronous import (
    DecisionTask,
    analyze_task,
    binary_consensus_task,
    decision_graph,
    epsilon_agreement_task,
    identity_task,
    input_graph,
    leader_task,
    moran_wolfstahl_certificate,
)
from repro.core import ModelError


class TestGraphs:
    def test_consensus_input_graph_is_hypercube(self):
        graph = input_graph(binary_consensus_task(3))
        assert graph.number_of_nodes() == 8
        assert graph.number_of_edges() == 12  # the 3-cube
        assert nx.is_connected(graph)

    def test_consensus_decision_graph_is_two_points(self):
        graph = decision_graph(binary_consensus_task(3))
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 0

    def test_epsilon_agreement_decision_graph_connected(self):
        graph = decision_graph(epsilon_agreement_task(2))
        assert nx.is_connected(graph)


class TestVerdicts:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_consensus_unsolvable(self, n):
        verdict = analyze_task(binary_consensus_task(n))
        assert verdict.provably_unsolvable

    def test_leader_election_unsolvable(self):
        assert analyze_task(leader_task(3)).provably_unsolvable

    def test_identity_not_flagged(self):
        assert not analyze_task(identity_task(2)).provably_unsolvable

    def test_epsilon_agreement_not_flagged(self):
        """Approximate agreement is solvable (§2.2.2) and the condition
        correctly declines to fire."""
        assert not analyze_task(epsilon_agreement_task(2)).provably_unsolvable


class TestCertificates:
    def test_consensus_certificate(self):
        cert = moran_wolfstahl_certificate(binary_consensus_task(3))
        assert cert.details["decision_components"] == 2

    def test_certificate_refused_when_condition_absent(self):
        with pytest.raises(ModelError):
            moran_wolfstahl_certificate(identity_task(2))


class TestTaskValidation:
    def test_unsatisfiable_task_rejected(self):
        with pytest.raises(ModelError):
            DecisionTask("bad", frozenset({(0, 0)}), {(0, 0): frozenset()})

    def test_mixed_arity_rejected(self):
        with pytest.raises(ModelError):
            DecisionTask(
                "bad",
                frozenset({(0,), (0, 1)}),
                {(0,): frozenset({(0,)}), (0, 1): frozenset({(0, 1)})},
            )

    def test_empty_inputs_rejected(self):
        with pytest.raises(ModelError):
            DecisionTask("bad", frozenset(), {})
