"""Tests for repro.core.freeze: canonical immutable state encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.freeze import freeze, frozendict, is_frozen, thaw


class TestFrozendict:
    def test_lookup(self):
        d = frozendict(a=1, b=2)
        assert d["a"] == 1
        assert d["b"] == 2

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            frozendict(a=1)["b"]

    def test_equality_with_dict(self):
        assert frozendict(a=1) == {"a": 1}
        assert frozendict(a=1) != {"a": 2}

    def test_hash_is_order_independent(self):
        assert hash(frozendict(a=1, b=2)) == hash(frozendict(b=2, a=1))

    def test_usable_as_dict_key(self):
        d = {frozendict(x=1): "value"}
        assert d[frozendict(x=1)] == "value"

    def test_set_returns_new_mapping(self):
        d = frozendict(a=1)
        d2 = d.set("a", 2)
        assert d["a"] == 1
        assert d2["a"] == 2

    def test_set_new_key(self):
        d = frozendict(a=1).set("b", 2)
        assert d == {"a": 1, "b": 2}

    def test_update_with(self):
        d = frozendict(a=1, b=2).update_with(b=3, c=4)
        assert d == {"a": 1, "b": 3, "c": 4}

    def test_len_and_iter(self):
        d = frozendict(a=1, b=2)
        assert len(d) == 2
        assert sorted(d) == ["a", "b"]

    def test_repr_is_deterministic(self):
        assert repr(frozendict(b=2, a=1)) == repr(frozendict(a=1, b=2))


class TestFreezeThaw:
    def test_freeze_dict(self):
        frozen = freeze({"a": [1, 2], "b": {"c": 3}})
        assert isinstance(frozen, frozendict)
        assert frozen["a"] == (1, 2)
        assert frozen["b"]["c"] == 3
        hash(frozen)  # must be hashable

    def test_freeze_list_to_tuple(self):
        assert freeze([1, [2, 3]]) == (1, (2, 3))

    def test_freeze_set(self):
        assert freeze({1, 2}) == frozenset({1, 2})

    def test_freeze_scalar_passthrough(self):
        assert freeze(42) == 42
        assert freeze("s") == "s"
        assert freeze(None) is None

    def test_thaw_roundtrip(self):
        original = {"a": [1, 2], "b": {"c": 3}}
        assert thaw(freeze(original)) == original

    def test_is_frozen(self):
        assert is_frozen(freeze({"a": [1]}))
        assert not is_frozen({"a": 1})
        assert not is_frozen([1, 2])


nested_values = st.recursive(
    st.one_of(st.integers(), st.text(max_size=5), st.booleans(), st.none()),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=3), children, max_size=4),
    ),
    max_leaves=12,
)


class TestFreezeProperties:
    @given(nested_values)
    def test_freeze_always_hashable(self, value):
        hash(freeze(value))

    @given(nested_values)
    def test_freeze_is_idempotent(self, value):
        once = freeze(value)
        assert freeze(once) == once

    @given(nested_values)
    def test_structurally_equal_values_freeze_equal(self, value):
        assert freeze(value) == freeze(thaw(freeze(value)))

    @given(st.dictionaries(st.text(max_size=3), st.integers(), max_size=5))
    def test_dict_thaw_freeze_roundtrip(self, d):
        assert thaw(freeze(d)) == d
