"""Direct tests of the substrate layers' edge cases: the shared-memory
system automaton, the synchronous network plumbing, the async buffer, and
the ring simulators' error paths."""

import pytest

from repro.core import ModelError
from repro.core.exploration import explore
from repro.core.freeze import frozendict
from repro.shared_memory import SharedMemoryProcess, SharedMemorySystem, read, write


class _CounterProcess(SharedMemoryProcess):
    """Reads a shared counter, bumps it once, announces the value read."""

    def initial_local(self):
        return frozendict(phase="read", seen=None)

    def pending_access(self, local):
        if local["phase"] == "read":
            return read("c")
        if local["phase"] == "write":
            return write("c", local["seen"] + 1)
        return None

    def after_access(self, local, response):
        if local["phase"] == "read":
            return local.set("phase", "write").set("seen", response)
        return local.set("phase", "announce")

    def output_action(self, local):
        if local["phase"] == "announce":
            return ("bumped", self.name, local["seen"])
        return None

    def after_output(self, local):
        return local.set("phase", "done")

    def output_actions(self):
        return frozenset(
            {("bumped", self.name, v) for v in range(4)}
        )


class TestSharedMemorySystem:
    def build(self, n=2):
        return SharedMemorySystem(
            [_CounterProcess(f"p{i}") for i in range(n)],
            initial_memory={"c": 0},
            name="counter-system",
        )

    def test_signature_partition(self):
        system = self.build()
        assert ("step", "p0") in system.signature.internals
        assert ("bumped", "p0", 0) in system.signature.outputs

    def test_sequential_run_counts_to_two(self):
        system = self.build()
        state = next(iter(system.initial_states()))
        for _ in range(3):  # read, write, announce
            action = next(iter(system.enabled_actions(state)))
            state = next(iter(system.apply(state, action)))
        # One process went through; at least one bump happened.
        assert system.memory(state)["c"] >= 1

    def test_lost_update_race_is_reachable(self):
        """Both processes read 0 before either writes: the classic lost
        update — reachable, and found by plain exploration."""
        system = self.build()
        reach = explore(system, include_inputs=True, max_states=10_000)
        finals = [
            s for s in reach.reachable
            if all(
                system.local_state(s, p.name)["phase"] == "done"
                for p in system.processes
            )
        ]
        counts = {system.memory(s)["c"] for s in finals}
        assert 1 in counts  # the race
        assert 2 in counts  # the serial outcome

    def test_unknown_variable_rejected(self):
        class Bad(_CounterProcess):
            def pending_access(self, local):
                return read("nope")

        system = SharedMemorySystem([Bad("p0")], initial_memory={"c": 0})
        state = next(iter(system.initial_states()))
        with pytest.raises(ModelError):
            list(system.apply(state, ("step", "p0")))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            SharedMemorySystem(
                [_CounterProcess("p"), _CounterProcess("p")],
                initial_memory={"c": 0},
            )

    def test_one_task_per_process(self):
        system = self.build(3)
        assert len(system.tasks()) == 3


class TestSynchronousPlumbing:
    def test_view_keys_are_canonical(self):
        from repro.consensus import FloodSet, run_synchronous

        a = run_synchronous(FloodSet(), [0, 1], t=0, rounds=1)
        b = run_synchronous(FloodSet(), [0, 1], t=0, rounds=1)
        assert a.views[0].key() == b.views[0].key()
        assert a.views[0].key() != a.views[1].key()

    def test_rounds_override(self):
        from repro.consensus import FloodSet, run_synchronous

        run = run_synchronous(FloodSet(), [0, 1, 1], t=1, rounds=5)
        assert run.rounds_run == 5

    def test_scripted_byzantine_defaults_to_silence(self):
        from repro.consensus import FloodSet, ScriptedByzantine, run_synchronous

        adversary = ScriptedByzantine([0], {})
        run = run_synchronous(FloodSet(), [0, 1, 1], adversary=adversary, t=1)
        for rnd in run.views[1].rounds:
            assert 0 not in rnd


class TestAsyncBuffer:
    def test_buffer_roundtrip(self):
        from repro.asynchronous.network import _buffer_add, _buffer_remove

        buffer = _buffer_add(frozendict(), [(0, "m"), (0, "m"), (1, "x")])
        assert buffer[(0, "m")] == 2
        buffer = _buffer_remove(buffer, 0, "m")
        assert buffer[(0, "m")] == 1
        buffer = _buffer_remove(buffer, 0, "m")
        assert (0, "m") not in buffer

    def test_remove_missing_raises(self):
        from repro.asynchronous.network import _buffer_remove

        with pytest.raises(KeyError):
            _buffer_remove(frozendict(), 0, "ghost")

    def test_run_fair_round_robin_is_deterministic(self):
        from repro.asynchronous import AsyncConsensusSystem, WaitForAll

        system = AsyncConsensusSystem(WaitForAll(), 3)
        a, steps_a = system.run_fair((0, 1, 1))
        b, steps_b = system.run_fair((0, 1, 1))
        assert a == b and steps_a == steps_b

    def test_run_fair_seeded_variation(self):
        from repro.asynchronous import AsyncConsensusSystem, WaitForAll

        system = AsyncConsensusSystem(WaitForAll(), 3)
        outcomes = {system.run_fair((0, 1, 1), seed=s)[1] for s in range(5)}
        assert outcomes  # runs complete; schedules may legitimately vary


class TestRingSimulatorErrors:
    def test_unknown_direction_rejected(self):
        from repro.rings import RingProcess, run_async_ring

        class Bad(RingProcess):
            def on_start(self):
                return [("send", "sideways", "m")]

            def on_message(self, direction, message):
                return []

        with pytest.raises(ModelError):
            run_async_ring([Bad(), Bad()])

    def test_step_budget_enforced(self):
        from repro.rings import RIGHT, RingProcess, run_async_ring

        class Chatter(RingProcess):
            def on_start(self):
                return [("send", RIGHT, "m")]

            def on_message(self, direction, message):
                return [("send", RIGHT, "m")]  # forever

        with pytest.raises(ModelError):
            run_async_ring([Chatter(), Chatter()], max_steps=100)

    def test_unknown_action_rejected(self):
        from repro.rings import RingProcess, run_async_ring

        class Bad(RingProcess):
            def on_start(self):
                return [("dance",)]

            def on_message(self, direction, message):
                return []

        with pytest.raises(ModelError):
            run_async_ring([Bad(), Bad()])
