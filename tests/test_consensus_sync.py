"""Tests for the synchronous round model and crash-tolerant consensus."""

import pytest

from repro.consensus import (
    CrashAdversary,
    FloodSet,
    OmissionAdversary,
    run_synchronous,
)


class TestSimulator:
    def test_fault_free_floodset(self):
        run = run_synchronous(FloodSet(), [0, 1, 1], t=1)
        assert run.rounds_run == 2
        assert run.all_honest_decided()
        assert run.agreement_holds()
        assert set(run.decisions.values()) == {0}  # min rule

    def test_message_counts(self):
        run = run_synchronous(FloodSet(), [0, 1, 1], t=1)
        # Complete graph, 2 rounds: 3*2 messages per round.
        assert run.messages_sent == 12
        assert run.messages_delivered == 12

    def test_views_record_deliveries(self):
        run = run_synchronous(FloodSet(), [0, 1], t=0, rounds=1)
        view0 = run.views[0]
        assert view0.input_value == 0
        assert len(view0.rounds) == 1
        assert set(view0.rounds[0]) == {1}

    def test_indistinguishability_of_identical_runs(self):
        run_a = run_synchronous(FloodSet(), [0, 1, 1], t=1)
        run_b = run_synchronous(FloodSet(), [0, 1, 1], t=1)
        for pid in range(3):
            assert run_a.indistinguishable_to(run_b, pid)

    def test_crash_partial_delivery(self):
        # p0 crashes in round 1 reaching only p1.
        adversary = CrashAdversary({0: (1, [1])})
        run = run_synchronous(FloodSet(), [0, 1, 1], adversary=adversary, t=1)
        assert 0 in run.views[1].rounds[0]
        assert 0 not in run.views[2].rounds[0]
        # After the crash round, p0 is silent.
        assert 0 not in run.views[1].rounds[1]

    def test_crashed_by(self):
        adversary = CrashAdversary({0: (2, [])})
        assert not adversary.crashed_by(0, 1)
        assert adversary.crashed_by(0, 2)
        assert not adversary.crashed_by(1, 5)

    def test_omission_adversary(self):
        adversary = OmissionAdversary(
            [0], drop=lambda rnd, src, dest: dest == 2
        )
        run = run_synchronous(FloodSet(), [0, 1, 1], adversary=adversary, t=1)
        assert 0 not in run.views[2].rounds[0]
        assert 0 in run.views[1].rounds[0]


class TestFloodSetCorrectness:
    @pytest.mark.parametrize(
        "inputs", [(0, 0, 0), (1, 1, 1), (0, 1, 0), (1, 0, 1)]
    )
    def test_agreement_and_validity_under_one_crash(self, inputs):
        for crash_round in (1, 2):
            for receivers_mask in range(4):
                receivers = [
                    p for i, p in enumerate([1, 2]) if receivers_mask & (1 << i)
                ]
                adversary = CrashAdversary({0: (crash_round, receivers)})
                run = run_synchronous(
                    FloodSet(), list(inputs), adversary=adversary, t=1
                )
                assert run.agreement_holds()
                assert run.validity_holds()
                assert run.all_honest_decided()

    def test_truncated_floodset_is_incorrect(self):
        """One round is not enough with one crash: the seed of the t+1 bound."""
        adversary = CrashAdversary({0: (1, [1])})
        run = run_synchronous(
            FloodSet(rounds_override=1), [0, 1, 1], adversary=adversary, t=1,
        )
        assert not run.agreement_holds()

    def test_validity_counts_crashed_inputs(self):
        """A crashed process is honest-but-dying: if it slips its unique
        value to someone, deciding that value is still valid."""
        adversary = CrashAdversary({0: (1, [1, 2])})
        run = run_synchronous(FloodSet(), [0, 1, 1], adversary=adversary, t=1)
        assert run.validity_holds()
        assert run.agreement_holds()
