"""Tests for termination detection (Chandy–Misra bound) and global
snapshots (Chandy–Lamport) — survey §2.6 and the unification remark."""

import pytest

from repro.asynchronous import (
    conservation_series,
    message_bound_series,
    run_dijkstra_scholten,
    run_token_snapshot,
)


class TestDijkstraScholten:
    @pytest.mark.parametrize("seed", range(10))
    def test_detection_is_sound(self, seed):
        """Termination is declared only when nothing is active or in flight."""
        result = run_dijkstra_scholten(seed=seed)
        assert result.detected
        assert result.detection_was_correct

    @pytest.mark.parametrize("seed", range(10))
    def test_chandy_misra_bound_met_with_equality(self, seed):
        """The lower bound says control >= basic; Dijkstra–Scholten pays
        exactly one signal per basic message."""
        result = run_dijkstra_scholten(seed=seed, budget=6, fanout=3)
        assert result.control_messages == result.basic_messages

    def test_bigger_computations(self):
        result = run_dijkstra_scholten(n=8, budget=8, fanout=3, seed=5)
        assert result.detected and result.detection_was_correct
        assert result.basic_messages > 10
        assert result.control_messages == result.basic_messages

    def test_series_helper(self):
        series = message_bound_series(range(6))
        assert all(control == basic for basic, control in series)

    def test_reproducible(self):
        a = run_dijkstra_scholten(seed=3)
        b = run_dijkstra_scholten(seed=3)
        assert (a.basic_messages, a.steps) == (b.basic_messages, b.steps)


class TestChandyLamport:
    @pytest.mark.parametrize("seed", range(10))
    def test_snapshot_conserves_tokens(self, seed):
        result = run_token_snapshot(seed=seed)
        assert result.consistent, (
            result.initial_total, result.snapshot_total
        )

    def test_naive_dump_misses_in_flight_tokens(self):
        """The contrast that motivates the algorithm: reading balances
        without channel recording undercounts whenever tokens are flying."""
        series = conservation_series(range(12))
        undercounts = sum(1 for initial, _snap, naive in series
                          if naive < initial)
        assert undercounts >= 3  # the workload keeps channels busy

    def test_every_process_recorded(self):
        result = run_token_snapshot(seed=1, n=5)
        assert len(result.recorded_states) == 5

    def test_all_channels_closed(self):
        result = run_token_snapshot(seed=2, n=4)
        assert len(result.recorded_channels) == 4 * 3

    def test_markers_one_per_channel(self):
        result = run_token_snapshot(seed=4, n=4)
        assert result.markers_sent == 4 * 3
