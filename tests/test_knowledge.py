"""Tests for knowledge operators and the common-knowledge result (E16)."""

import pytest

from repro.asynchronous import HandshakeProtocol
from repro.core import ModelError
from repro.knowledge import (
    PointSystem,
    common_knowledge_certificate,
    delivery_knowledge_profile,
    simultaneous_broadcast_system,
    two_generals_point_system,
)


class TestOperators:
    def muddy_system(self):
        """Two agents, each seeing only the other's bit."""
        points = [(a, b) for a in (0, 1) for b in (0, 1)]
        return PointSystem(
            points, agents=["alice", "bob"],
            view=lambda agent, p: p[1] if agent == "alice" else p[0],
        )

    def test_knows_own_blind_spot(self):
        system = self.muddy_system()
        fact_alice_is_one = lambda p: p[0] == 1  # noqa: E731
        # Alice cannot know her own bit; Bob can.
        assert not system.knows("alice", fact_alice_is_one, (1, 0))
        assert system.knows("bob", fact_alice_is_one, (1, 0))

    def test_everyone_knows(self):
        system = self.muddy_system()
        tautology = lambda p: True  # noqa: E731
        assert system.everyone_knows(tautology, (0, 0))

    def test_common_knowledge_of_tautology(self):
        system = self.muddy_system()
        assert system.common_knowledge(lambda p: True, (1, 1))

    def test_no_common_knowledge_of_contingent_fact(self):
        system = self.muddy_system()
        assert not system.common_knowledge(lambda p: p[0] == 1, (1, 1))

    def test_empty_system_rejected(self):
        with pytest.raises(ModelError):
            PointSystem([], agents=["a"], view=lambda a, p: p)


class TestTwoGeneralsKnowledge:
    def test_knowledge_ladder(self):
        """k deliveries buy exactly k-1 levels of nested knowledge."""
        profile = delivery_knowledge_profile(HandshakeProtocol(6, 3))
        for k, entry in profile.items():
            if k >= 1:
                assert entry["depth"] == k - 1, (k, entry)

    def test_receiver_knows_first(self):
        profile = delivery_knowledge_profile(HandshakeProtocol(6, 3))
        assert profile[1]["g1_knows"] and not profile[1]["g0_knows"]

    def test_common_knowledge_never_attained(self):
        profile = delivery_knowledge_profile(HandshakeProtocol(6, 3))
        assert not any(entry["common"] for entry in profile.values())

    def test_certificate(self):
        cert = common_knowledge_certificate()
        assert cert.technique == "knowledge (indistinguishability fixpoint)"
        depths = cert.details["knowledge_depths"]
        assert depths[0] == 0
        assert depths[max(depths)] == max(depths) - 1

    def test_all_points_reach_the_empty_point(self):
        """The structural reason: every point's component contains k=0."""
        system = two_generals_point_system(HandshakeProtocol(4, 2))
        for point in system.points:
            assert 0 in system.reachable_points(point)


class TestSynchronousContrast:
    def test_reliable_broadcast_creates_common_knowledge(self):
        system, fact = simultaneous_broadcast_system(n=4)
        assert system.common_knowledge(fact, "sent")
        assert not system.common_knowledge(fact, "idle")
