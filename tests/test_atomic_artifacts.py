"""Atomic artifact writes: a killed writer never leaves a torn file.

Covers :mod:`repro.core.artifacts` directly (happy path, interruption
mid-write, unserializable payloads) and the consumers that route through
it: campaign counterexample JSONL artifacts and the golden-trace
fixture writer.
"""

import json
import os

import pytest

from repro.chaos.campaign import run_campaign, write_counterexample
from repro.chaos.targets import FloodSetCrashTarget
from repro.core import artifacts
from repro.core.artifacts import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


def test_atomic_write_text_roundtrip(tmp_path):
    path = str(tmp_path / "artifact.txt")
    assert atomic_write_text(path, "hello\n") == path
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == "hello\n"
    # No staging debris left behind.
    assert os.listdir(tmp_path) == ["artifact.txt"]


def test_atomic_write_text_overwrites_whole_file(tmp_path):
    path = str(tmp_path / "artifact.txt")
    atomic_write_text(path, "long previous content\n")
    atomic_write_text(path, "short\n")
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == "short\n"  # no stale tail from the old file


def test_atomic_write_json_creates_parent_dirs(tmp_path):
    path = str(tmp_path / "deep" / "nested" / "snapshot.json")
    atomic_write_json(path, {"a": 1}, sort_keys=True)
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle) == {"a": 1}


def test_atomic_write_bytes_roundtrip(tmp_path):
    path = str(tmp_path / "blob.bin")
    payload = bytes(range(256)) * 4
    assert atomic_write_bytes(path, payload) == path
    with open(path, "rb") as handle:
        assert handle.read() == payload
    assert os.listdir(tmp_path) == ["blob.bin"]


class _Boom(RuntimeError):
    pass


def _interrupt_write(monkeypatch):
    """Make the staged ``write`` call die partway through."""
    real_fdopen = os.fdopen

    def exploding_fdopen(fd, *args, **kwargs):
        handle = real_fdopen(fd, *args, **kwargs)
        real_write = handle.write

        def write(text):
            real_write(text[: len(text) // 2])
            raise _Boom("disk vanished mid-write")

        handle.write = write
        return handle

    monkeypatch.setattr(artifacts.os, "fdopen", exploding_fdopen)


def test_interrupted_write_leaves_no_file(tmp_path, monkeypatch):
    path = str(tmp_path / "artifact.json")
    _interrupt_write(monkeypatch)
    with pytest.raises(_Boom):
        atomic_write_text(path, "never lands\n")
    # Destination never appeared, staging file was cleaned up.
    assert os.listdir(tmp_path) == []


def test_interrupted_bytes_write_preserves_previous_blob(tmp_path, monkeypatch):
    path = str(tmp_path / "graph.bin")
    atomic_write_bytes(path, b"generation-1 blob")
    _interrupt_write(monkeypatch)
    with pytest.raises(_Boom):
        atomic_write_bytes(path, b"generation-2 blob that never lands")
    monkeypatch.undo()
    with open(path, "rb") as handle:
        assert handle.read() == b"generation-1 blob"
    assert os.listdir(tmp_path) == ["graph.bin"]


def test_interrupted_write_preserves_previous_artifact(tmp_path, monkeypatch):
    path = str(tmp_path / "artifact.json")
    atomic_write_json(path, {"generation": 1})
    _interrupt_write(monkeypatch)
    with pytest.raises(_Boom):
        atomic_write_json(path, {"generation": 2})
    monkeypatch.undo()
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle) == {"generation": 1}
    assert os.listdir(tmp_path) == ["artifact.json"]


def test_unserializable_payload_never_touches_destination(tmp_path):
    path = str(tmp_path / "artifact.json")
    atomic_write_json(path, {"generation": 1})
    with pytest.raises(TypeError):
        atomic_write_json(path, {"bad": object()})
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle) == {"generation": 1}


def test_counterexample_artifact_is_atomic(tmp_path, monkeypatch):
    report = run_campaign(targets=[FloodSetCrashTarget()], runs=10, master_seed=0)
    assert report.counterexamples
    cx = report.counterexamples[0]

    path = write_counterexample(cx, str(tmp_path))
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    meta = json.loads(lines[0])
    assert meta["fingerprint"] == cx.fingerprint
    assert len(lines) == 2 + cx.trace.steps  # meta + trace header + events

    # A crash while re-writing the same artifact keeps the old bytes.
    before = "\n".join(lines)
    _interrupt_write(monkeypatch)
    with pytest.raises(_Boom):
        write_counterexample(cx, str(tmp_path))
    monkeypatch.undo()
    with open(path, encoding="utf-8") as handle:
        assert handle.read().splitlines() == before.splitlines()
    assert os.listdir(tmp_path) == [os.path.basename(path)]
