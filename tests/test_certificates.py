"""Unit tests for the certificate layer and the generic bivalence engine."""

import pytest

from repro.core import CertificateError, SearchBudgetExceeded
from repro.impossibility import (
    BoundCertificate,
    CounterexampleCertificate,
    FailureWitness,
    ImpossibilityCertificate,
    StallingAdversary,
    ValencyAnalyzer,
)


class TestFailureWitness:
    def test_revalidate_passes(self):
        FailureWitness("cand", "prop", replay=lambda: True).revalidate()

    def test_revalidate_fails(self):
        witness = FailureWitness("cand", "prop", replay=lambda: False)
        with pytest.raises(CertificateError):
            witness.revalidate()

    def test_no_replay_is_vacuous(self):
        FailureWitness("cand", "prop").revalidate()


class TestCertificates:
    def test_impossibility_summary_mentions_scope(self):
        cert = ImpossibilityCertificate(
            claim="X is impossible", scope="bounded class", technique="pigeonhole",
            candidates_checked=10,
        )
        summary = cert.summary()
        assert "bounded class" in summary and "pigeonhole" in summary

    def test_impossibility_revalidation_cascades(self):
        cert = ImpossibilityCertificate(
            claim="c", scope="s", technique="t",
            witnesses=[FailureWitness("x", "p", replay=lambda: False)],
        )
        with pytest.raises(CertificateError):
            cert.revalidate()

    def test_counterexample_replay(self):
        cert = CounterexampleCertificate(
            claim="c", technique="t", replay=lambda: False
        )
        with pytest.raises(CertificateError):
            cert.revalidate()

    def test_bound_certificate_lower_direction(self):
        cert = BoundCertificate(
            claim="c", technique="t",
            series={4: 10.0}, bound={4: 8.0}, direction="lower",
        )
        assert cert.holds()
        cert.series[4] = 7.0
        assert not cert.holds()
        with pytest.raises(CertificateError):
            cert.revalidate()

    def test_bound_certificate_upper_direction(self):
        cert = BoundCertificate(
            claim="c", technique="t",
            series={4: 7.0}, bound={4: 8.0}, direction="upper",
        )
        assert cert.holds()
        cert.series[4] = 9.0
        assert not cert.holds()

    def test_bound_certificate_ignores_unbounded_points(self):
        cert = BoundCertificate(
            claim="c", technique="t", series={4: 1.0, 5: 2.0}, bound={4: 0.5},
        )
        assert cert.holds()


class _DiamondSystem:
    """Toy decision system: C -> (A -> decide 0 | B -> decide 1), plus a
    self-loop at C for process 1 to exercise cycle handling."""

    processes = (0, 1)
    values = (0, 1)
    _graph = {
        "C": {("a", 0): "A", ("b", 0): "B", ("loop", 1): "C"},
        "A": {("fin", 1): "A!"},
        "B": {("fin", 1): "B!"},
        "A!": {},
        "B!": {},
    }
    _decided = {"A!": {0: 0, 1: 0}, "B!": {0: 1, 1: 1}}

    def initial_configurations(self):
        return ["C"]

    def events(self, config):
        return list(self._graph[config])

    def owner(self, event):
        return event[1]

    def apply(self, config, event):
        return self._graph[config][event]

    def decisions(self, config):
        return self._decided.get(config, {})

    def decided_values(self, config):
        return frozenset(self.decisions(config).values())

    def fair_events(self, config):
        owed = {}
        for event in self.events(config):
            owed.setdefault(self.owner(event), event)
        return owed


class TestValencyEngine:
    def test_valency_through_cycles(self):
        analyzer = ValencyAnalyzer(_DiamondSystem())
        assert analyzer.valency("C") == frozenset({0, 1})
        assert analyzer.valency("A") == frozenset({0})
        assert analyzer.valency("B") == frozenset({1})

    def test_classification_helpers(self):
        analyzer = ValencyAnalyzer(_DiamondSystem())
        assert analyzer.is_bivalent("C")
        assert analyzer.is_univalent("A")
        assert analyzer.bivalent_initial_configuration() == "C"

    def test_memoization_shares_work(self):
        analyzer = ValencyAnalyzer(_DiamondSystem())
        analyzer.valency("C")
        # Everything reachable is now cached.
        assert "A!" in analyzer._valency_cache
        assert analyzer.valency("B") == frozenset({1})

    def test_budget_enforced(self):
        analyzer = ValencyAnalyzer(_DiamondSystem(), max_configurations=2)
        with pytest.raises(SearchBudgetExceeded):
            analyzer.valency("C")

    def test_no_agreement_violation_in_diamond(self):
        analyzer = ValencyAnalyzer(_DiamondSystem())
        assert analyzer.find_agreement_violation() is None

    def test_stalling_on_the_diamond_finds_the_decider(self):
        """Process 0 is a Bridgeland–Watro decider at C: it alone chooses
        between the 0-valent and 1-valent successors.  The adversary can
        loop process 1 forever, but an obligation of process 0 cannot be
        discharged while staying bivalent — and the diagnosis names it."""
        analyzer = ValencyAnalyzer(_DiamondSystem())
        adversary = StallingAdversary(analyzer)
        result = adversary.run("C", stages=6)
        assert not result.stayed_bivalent
        assert result.decider is not None
        assert result.decider.process == 0
        assert set(result.decider.schedule_to) == {0, 1}
