#!/usr/bin/env python3
"""Clock synchronization: the epsilon(1 - 1/n) wall (§2.2.6).

Measures the exact worst-case skew of the Lundelius–Lynch averaging
algorithm and a naive baseline, then walks through the stretching argument
that makes the bound universal: two executions no algorithm can tell
apart, in which a clock moved by a full epsilon.

    python examples/clock_synchronization.py
"""

from repro.clocks import (
    follow_zero_algorithm,
    lundelius_lynch_algorithm,
    optimal_bound,
    shifted_executions,
    worst_case_skew,
)


def main() -> None:
    print(f"{'n':>3s} {'LL worst skew':>14s} {'eps(1-1/n)':>12s} "
          f"{'naive skew':>11s}")
    for n in (2, 3, 4):
        ll = worst_case_skew(lundelius_lynch_algorithm, n)
        naive = worst_case_skew(follow_zero_algorithm, n)
        print(f"{n:>3d} {ll:>14.4f} {optimal_bound(n):>12.4f} {naive:>11.4f}")

    print("\n-- The stretching argument (n=3, shifting process 0) --")
    run_a, run_b = shifted_executions(lundelius_lynch_algorithm, 3, 1.0, 0)
    print(f"execution A: offsets {run_a.offsets}, "
          f"corrections {tuple(round(c, 3) for c in run_a.corrections)}, "
          f"skew {run_a.skew:.3f}")
    print(f"execution B: offsets {run_b.offsets}, "
          f"corrections {tuple(round(c, 3) for c in run_b.corrections)}, "
          f"skew {run_b.skew:.3f}")
    print("observations identical:",
          run_a.observations == run_b.observations)
    print("=> the algorithm cannot react, yet a clock moved by epsilon; "
          "no algorithm beats eps(1 - 1/n).")


if __name__ == "__main__":
    main()
