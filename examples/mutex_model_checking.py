#!/usr/bin/env python3
"""Model checking the mutual exclusion zoo (§2.1).

Verifies every bundled algorithm's safety and liveness over its full
reachable state space, prints the property table, then demonstrates the
two mechanized lower bounds: the exhaustive Cremers–Hibbard search and the
Burns–Lynch covering adversary.

    python examples/mutex_model_checking.py
"""

from repro.shared_memory import (
    burns_lynch_attack,
    cremers_hibbard_certificate,
    naive_spin_lock_system,
)
from repro.shared_memory.mutex import (
    dijkstra_system,
    handoff_lock_system,
    peterson_system,
    tas_semaphore_system,
)


def check(system):
    mutex = system.check_mutual_exclusion() is None
    deadlock_free = all(
        system.check_deadlock_freedom(p.name) is None for p in system.processes
    )
    lockout_free = all(
        system.check_lockout_freedom(p.name) is None for p in system.processes
    )
    return mutex, deadlock_free, lockout_free


def main() -> None:
    systems = [
        ("TAS semaphore (2 values)", tas_semaphore_system(2)),
        ("handoff lock (4 values)", handoff_lock_system()),
        ("Peterson (3 registers)", peterson_system()),
        ("Dijkstra 1965 (r/w)", dijkstra_system(2)),
    ]
    print(f"{'algorithm':28s} {'mutex':>6s} {'no-deadlock':>12s} "
          f"{'no-lockout':>11s}")
    for name, system in systems:
        mutex, dead, lock = check(system)
        print(f"{name:28s} {'yes' if mutex else 'NO':>6s} "
              f"{'yes' if dead else 'NO':>12s} "
              f"{'yes' if lock else 'NO':>11s}")

    print("\n-- Cremers–Hibbard, mechanized (E1) --")
    cert = cremers_hibbard_certificate(values=2, modes=1, symmetric=True)
    print(cert.summary())

    print("\n-- Burns–Lynch covering adversary (E2) --")
    cert = burns_lynch_attack(naive_spin_lock_system())
    print(cert.summary())
    print("the violating execution:")
    print(cert.evidence.describe(max_steps=12))


if __name__ == "__main__":
    main()
