#!/usr/bin/env python3
"""Byzantine generals: agreement under attack, and the 3t boundary.

Demonstrates the survey's §2.2 on concrete runs:
* EIG withstanding equivocation at n = 3t + 1;
* the exact same protocol dismantled by the ring-splice scenario argument
  at n = 3t;
* Dolev–Strong beating the bound with (simulated) signatures;
* the t+1-round floor, found by exhaustive crash-pattern search.

    python examples/byzantine_generals.py
"""

from repro.consensus import (
    ByzantineAdversary,
    DolevStrong,
    EIGByzantine,
    EquivocatingSender,
    FloodSet,
    byzantine_scenarios,
    find_round_bound_violation,
    run_spliced_ring,
    run_synchronous,
)


def equivocator(pids):
    def behaviour(rnd, src, dest, honest):
        return (((), dest % 2),) if rnd == 1 else None

    return ByzantineAdversary(pids, behaviour)


def main() -> None:
    print("-- EIG at n=4, t=1: process 3 equivocates --")
    run = run_synchronous(EIGByzantine(), [0, 1, 1, 0],
                          adversary=equivocator([3]), t=1)
    print(f"honest decisions: {run.honest_decisions()}  "
          f"agreement={run.agreement_holds()} validity={run.validity_holds()}")

    print("\n-- The same protocol at n=3, t=1: the splice argument --")
    spliced = run_spliced_ring(EIGByzantine(), n=3, t=1)
    print("hexagon (two spliced copies, fault-free) decisions:")
    for node, decision in sorted(spliced.decisions.items()):
        print(f"  node {node}: decides {decision}")
    print("extracted real executions:")
    for scenario in byzantine_scenarios(EIGByzantine(), spliced):
        verdict = "satisfied" if scenario.holds else "VIOLATED"
        decisions = {
            pid: scenario.run.decisions[pid] for pid in scenario.honest_copy_of
        }
        print(f"  {scenario.name}: requires {scenario.requirement} -> "
              f"{verdict} (honest decisions {decisions})")

    print("\n-- Dolev–Strong with signatures: n=4, t=1, sender equivocates --")
    run = run_synchronous(DolevStrong(), [0, 0, 0, 0],
                          adversary=EquivocatingSender(0, 1), t=1)
    print(f"honest decisions: {run.honest_decisions()}  "
          f"agreement={run.agreement_holds()}")

    print("\n-- The t+1 round floor (n=4, t=2) --")
    for rounds in (1, 2, 3):
        result = find_round_bound_violation(
            FloodSet(rounds_override=rounds), n=4, t=2, rounds=rounds
        )
        if result.violation is None:
            print(f"  {rounds} rounds: no violation in {result.runs_checked} "
                  "runs — t+1 suffices")
        else:
            bad = result.violation
            print(f"  {rounds} rounds: {result.violated_property} violated — "
                  f"inputs {bad.inputs}, crashes "
                  f"{dict(bad.adversary.crashes)}")


if __name__ == "__main__":
    main()
