#!/usr/bin/env python3
"""The lossy-channel trilogy: Two Generals, data links, common knowledge.

One unreliable channel, three of the survey's results (§2.2.4, §2.5,
§2.6): no coordinated attack; no reliable delivery with crashes or
bounded headers; no common knowledge — and the knowledge ladder that
quantifies exactly how far each delivered message gets you.

    python examples/unreliable_channels.py
"""

from repro.asynchronous import (
    HandshakeProtocol,
    run_dls,
    two_generals_certificate,
)
from repro.datalink import (
    AlternatingBitReceiver,
    AlternatingBitSender,
    FairLossyScheduler,
    bounded_header_attack,
    crash_attack,
    run_datalink,
)
from repro.knowledge import delivery_knowledge_profile


def main() -> None:
    print("-- Two Generals: every handshake depth fails somewhere --")
    for rounds, confirmations in [(2, 1), (4, 2), (6, 3)]:
        cert = two_generals_certificate(
            HandshakeProtocol(rounds, confirmations)
        )
        print(f"  {rounds}-slot / {confirmations}-ack handshake: breaks at "
              f"{cert.details['delivered']} deliveries")

    print("\n-- The knowledge ladder: what k deliveries buy --")
    profile = delivery_knowledge_profile(HandshakeProtocol(6, 3))
    for k in sorted(profile):
        entry = profile[k]
        print(f"  {k} deliveries: E^{entry['depth']} holds, "
              f"common knowledge: {entry['common']}")

    print("\n-- Data links: what retransmission can and cannot buy --")
    result = run_datalink(
        AlternatingBitSender(), AlternatingBitReceiver(),
        ["a", "b", "c"], FairLossyScheduler(loss=0.4, seed=1),
    )
    print(f"  alternating bit over fair lossy FIFO: delivered "
          f"{result.delivered} with {result.data_packets} packets "
          f"({'correct' if result.exactly_once_in_order else 'BROKEN'})")
    print(f"  + one receiver crash: {crash_attack().details['delivered']} "
          "(duplication — impossible per [78])")
    attack = bounded_header_attack(2)
    print(f"  + bounded headers vs packet stealing: delivered "
          f"{attack.details['bounded_delivered']} for [a, b, c], sender "
          f"believes done: {attack.details['bounded_sender_done']}")

    print("\n-- And the constructive coda: partial synchrony (DLS) --")
    outcome = run_dls(4, 1, [0, 1, 1, 0], gst_phase=3, seed=7)
    print(f"  consensus decided {set(outcome.decisions.values())} in "
          f"{outcome.phases_run} phases once the network stabilized — "
          "weakening the problem, not the proof, is the way out.")


if __name__ == "__main__":
    main()
