#!/usr/bin/env python3
"""Leader election in rings: the message-complexity landscape of §2.4.

Prints the measured message counts of LCR (O(n^2) worst case),
Hirschberg–Sinclair (O(n log n)) and the time-slice counterexample
algorithm (O(n) messages, time proportional to the smallest ID), plus the
anonymous-ring story: determinism fails by symmetry, Itai–Rodeh's coins
succeed.

    python examples/ring_election.py
"""

import math

from repro.rings import (
    MaxTokenProtocol,
    bit_reversal_ring,
    hs_election,
    itai_rodeh_election,
    lcr_election,
    symmetry_certificate,
    timeslice_election,
    worst_case_ring,
)


def main() -> None:
    print(f"{'n':>5s} {'LCR worst':>10s} {'HS worst':>10s} "
          f"{'n log2 n':>10s} {'winner':>8s}")
    for n in (8, 16, 32, 64, 128):
        lcr = lcr_election(worst_case_ring(n)).messages
        hs = hs_election(worst_case_ring(n)).messages
        curve = n * math.log2(n)
        print(f"{n:>5d} {lcr:>10d} {hs:>10d} {curve:>10.0f} "
              f"{'LCR' if lcr < hs else 'HS':>8s}")

    print("\n-- Bit-reversal rings: the symmetry behind Omega(n log n) --")
    ring = bit_reversal_ring(3)
    print(f"ring of 8: {ring} (the survey's example, plus one)")
    print(f"HS on it: {hs_election(ring).messages} messages")

    print("\n-- Time-slice: O(n) messages, unbounded time --")
    for idents in ([1, 20, 21, 22, 23, 24, 25, 26],
                   [9, 20, 21, 22, 23, 24, 25, 26]):
        result = timeslice_election(idents)
        print(f"IDs {idents}: {result.messages} messages, "
              f"{result.rounds} rounds")

    print("\n-- Anonymous rings --")
    cert = symmetry_certificate(MaxTokenProtocol(), 6)
    print(cert.claim)
    wins = sum(
        itai_rodeh_election(6, seed=s).election_complete for s in range(10)
    )
    print(f"Itai–Rodeh (randomized): {wins}/10 runs elect exactly one leader")


if __name__ == "__main__":
    main()
