#!/usr/bin/env python3
"""Quickstart: a tour of repro's mechanized impossibility results.

Runs one headline result from each major subsystem and prints its
certificate.  Everything is deterministic and finishes in seconds.

    python examples/quickstart.py
"""

from repro.asynchronous import FirstMessageWins, WaitForAll, flp_certificate
from repro.asynchronous import two_generals_certificate, HandshakeProtocol
from repro.consensus import EIGByzantine, flm_certificate
from repro.registers import hierarchy_table
from repro.shared_memory.mutex import handoff_lock_system, tas_semaphore_system


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("1. FLP: asynchronous consensus cannot tolerate one crash (§2.2.4)")
    for protocol, n in [(FirstMessageWins(), 2), (WaitForAll(), 2)]:
        cert = flp_certificate(protocol, n)
        print(f"\n{protocol.name} (n={n}):")
        print(f"  failure mode: {cert.details['failure_mode']}")
        for inputs, valency in cert.details["initial_valencies"]:
            print(f"  inputs {inputs}: valency {valency}")

    banner("2. Byzantine agreement needs n > 3t (§2.2.1)")
    cert = flm_certificate(EIGByzantine(), n=3, t=1)
    print(cert.summary())

    banner("3. Two Generals: no coordination over a lossy channel (§2.2.4)")
    cert = two_generals_certificate(HandshakeProtocol(rounds=4, confirmations=2))
    print(cert.summary())

    banner("4. Mutual exclusion: fairness needs more shared values (§2.1)")
    semaphore = tas_semaphore_system(2)
    handoff = handoff_lock_system()
    lockout = semaphore.check_lockout_freedom("p0")
    print(f"2-valued TAS semaphore: mutual exclusion "
          f"{'OK' if semaphore.check_mutual_exclusion() is None else 'BROKEN'}, "
          f"lockout witness: {lockout.describe() if lockout else 'none'}")
    print(f"4-valued handoff lock:  mutual exclusion "
          f"{'OK' if handoff.check_mutual_exclusion() is None else 'BROKEN'}, "
          f"lockout witness: "
          f"{'none — fair' if handoff.check_lockout_freedom('p0') is None else 'FOUND'}")

    banner("5. The wait-free consensus hierarchy (§2.3)")
    print(f"{'object / protocol':24s} {'n':>3s}  solves consensus?")
    for verdict in hierarchy_table():
        outcome = "yes" if verdict.solves_consensus else (
            f"no ({verdict.failure_kind})"
        )
        print(f"{verdict.protocol_name:24s} {verdict.n:>3d}  {outcome}")

    print("\nDone. See EXPERIMENTS.md for the full paper-vs-measured index.")


if __name__ == "__main__":
    main()
